"""Incremental re-summarization suite (workload epochs).

Covers the acceptance bar of the epoch refactor:

* **Drift property (hypothesis)** — random drift edits (add / remove /
  modify constraints) on seeded TPC-DS-like and JOB-like workloads:
  ``resummarize`` against the warm base epoch produces a summary whose
  content (``content_dict`` — everything but wall-clock timings) is
  byte-identical to a cold ``summarize`` of the drifted workload, and the
  report's reused components are exactly the intersection of the two
  component manifests;
* **Provenance** — ``DatabaseSummary.component_keys`` survives store
  round-trips and ``scale_summary`` (the regression the bugfix satellite
  guards);
* **Store lineage** — ``link_parent`` / ``parent_fingerprint`` /
  ``list_lineage`` semantics, including missing ancestors and defensive
  cycle breaking, plus GC keeping the lineage chain of pinned epochs alive;
* **Service** — ``resummarize`` reuses cached component solutions with zero
  LP solves (asserted via the solver metrics), maintains the
  ``repro_service_components_{reused,resolved}_total`` counters, records a
  ``service.resummarize`` span, and ``diff`` reports per-component reuse;
* **API and HTTP** — ``Session.resummarize`` / ``Session.diff`` /
  ``Session.lineage`` and ``POST /v1/resummarize`` with the 404 (unknown
  base) / 409 (require_warm) / 400 (bad wire body) status contracts.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import replace
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EpochDiff, RegenConfig, Session
from repro.benchdata.datagen import generate_database
from repro.benchdata.job import job_schema, job_workload
from repro.benchdata.tpcds import simple_workload, tpcds_schema
from repro.codd.scaling import scale_summary
from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.errors import ServiceError, SummaryStoreError
from repro.hydra.client import extract_constraints
from repro.obs.trace import get_tracer
from repro.predicates.dnf import DNFPredicate, col
from repro.predicates.interval import Interval
from repro.schema.relation import Attribute, ForeignKey, Relation
from repro.schema.schema import Schema
from repro.server import RegenerationServer, constraint_set_to_wire
from repro.service.fingerprint import (
    ManifestDiff,
    component_manifest,
    manifest_diff,
    manifest_fingerprint,
)
from repro.service.service import RegenerationService
from repro.service.store import SummaryStore
from repro.summary.relation_summary import DatabaseSummary, RelationSummary


# ---------------------------------------------------------------------- #
# toy scenario helpers (module-scoped fixtures cannot use the
# function-scoped conftest fixtures)
# ---------------------------------------------------------------------- #
def make_toy_schema() -> Schema:
    return Schema(
        [
            Relation(name="S", primary_key="S_pk", row_count=700,
                     attributes=[Attribute("A", Interval(0, 100)),
                                 Attribute("B", Interval(0, 50))]),
            Relation(name="T", primary_key="T_pk", row_count=1500,
                     attributes=[Attribute("C", Interval(0, 10))]),
            Relation(name="R", primary_key="R_pk", row_count=80_000,
                     foreign_keys=[ForeignKey(column="S_fk", target="S"),
                                   ForeignKey(column="T_fk", target="T")],
                     attributes=[]),
        ],
        name="toy",
    )


def toy_ccs(name: str = "toy-ccs") -> ConstraintSet:
    ccs = ConstraintSet(name=name)
    ccs.add(CardinalityConstraint("S", col("A").between(20, 60), 400))
    ccs.add(CardinalityConstraint("S", DNFPredicate.true(), 700))
    ccs.add(CardinalityConstraint("T", col("C") == 2, 900))
    ccs.add(CardinalityConstraint("T", DNFPredicate.true(), 1500))
    ccs.add(CardinalityConstraint("R", DNFPredicate.true(), 80_000))
    return ccs


def toy_drifted(name: str = "toy-drift") -> ConstraintSet:
    """The toy workload after drift: one new CC on S, T's filter retuned."""
    ccs = ConstraintSet(name=name)
    ccs.add(CardinalityConstraint("S", col("A").between(20, 60), 400))
    ccs.add(CardinalityConstraint("S", col("B").between(0, 25), 350))
    ccs.add(CardinalityConstraint("S", DNFPredicate.true(), 700))
    ccs.add(CardinalityConstraint("T", col("C") == 2, 900))
    ccs.add(CardinalityConstraint("T", DNFPredicate.true(), 1500))
    ccs.add(CardinalityConstraint("R", DNFPredicate.true(), 80_000))
    return ccs


# ---------------------------------------------------------------------- #
# drift environments (hypothesis-safe: module-scoped, never mutated)
# ---------------------------------------------------------------------- #
def _drift_env(schema, database, base_workload, extra_workload):
    base = extract_constraints(database, base_workload).constraints
    extra = extract_constraints(database, extra_workload).constraints
    # Query-derived CCs of the extra workload, grouped per query: the "add"
    # edits splice whole queries in, like a real workload gaining queries.
    extra_groups = {}
    for cc in extra.constraints:
        if cc.query_id:
            extra_groups.setdefault(cc.query_id, []).append(cc)
    return SimpleNamespace(schema=schema, base=base,
                           extra_groups=sorted(extra_groups.values(),
                                               key=lambda g: g[0].query_id),
                           config=RegenConfig(workers=2))


@pytest.fixture(scope="module")
def tpcds_drift_env():
    schema = tpcds_schema(scale_factor=0.0002)
    database = generate_database(schema, seed=3)
    return _drift_env(schema, database,
                      simple_workload(schema, num_queries=6, seed=7),
                      simple_workload(schema, num_queries=4, seed=11))


@pytest.fixture(scope="module")
def job_drift_env():
    schema = job_schema(scale_factor=0.001)
    database = generate_database(schema, seed=19)
    return _drift_env(schema, database,
                      job_workload(schema, num_queries=5, seed=23),
                      job_workload(schema, num_queries=3, seed=29))


@pytest.fixture(scope="module")
def tpcds_drift_service(tpcds_drift_env, tmp_path_factory):
    store = str(tmp_path_factory.mktemp("tpcds-epochs"))
    service = RegenerationService(tpcds_drift_env.schema, store=store,
                                  config=tpcds_drift_env.config)
    service.summarize(tpcds_drift_env.base, timeout=300)
    yield service
    service.close()


@pytest.fixture(scope="module")
def job_drift_service(job_drift_env, tmp_path_factory):
    store = str(tmp_path_factory.mktemp("job-epochs"))
    service = RegenerationService(job_drift_env.schema, store=store,
                                  config=job_drift_env.config)
    service.summarize(job_drift_env.base, timeout=300)
    yield service
    service.close()


def apply_drift(env, draw) -> ConstraintSet:
    """Draw a random drift edit script and apply it to the base workload.

    Edits mirror real workload churn: whole queries arrive (add), queries
    are dropped (remove), and observed cardinalities move (modify).  The
    relation-inventory CCs (``query_id is None``) always survive, like a
    schema whose tables do not come and go.
    """
    ccs = list(env.base.constraints)
    removable = [i for i, cc in enumerate(ccs) if cc.query_id]
    to_remove = draw(st.sets(st.sampled_from(removable), max_size=2)) \
        if removable else set()
    bumpable = [i for i in removable if i not in to_remove]
    bumps = draw(st.dictionaries(st.sampled_from(bumpable),
                                 st.integers(1, 3), max_size=2)) \
        if bumpable else {}
    num_add = draw(st.integers(0, len(env.extra_groups)))
    drifted = [
        replace(cc, cardinality=cc.cardinality + bumps[i])
        if i in bumps else cc
        for i, cc in enumerate(ccs) if i not in to_remove
    ]
    for group in env.extra_groups[:num_add]:
        drifted.extend(group)
    return ConstraintSet(drifted, name="drifted")


# ---------------------------------------------------------------------- #
# the drift property
# ---------------------------------------------------------------------- #
class TestDriftProperty:
    """resummarize == cold summarize, component bookkeeping exact."""

    def check(self, env, service, draw):
        drifted = apply_drift(env, draw)
        base_fingerprint = service.fingerprint(env.base)
        base_manifest = set(
            service.store.get_summary(base_fingerprint).component_manifest())
        report = service.resummarize(base_fingerprint, drifted, timeout=300)

        # Byte-identical content to a cold build of the drifted workload
        # (a storeless session shares no cache with the service).
        cold = Session(env.schema, config=env.config).summarize(drifted)
        assert report.summary.content_dict() == cold.summary.content_dict()
        assert report.summary.content_digest() == cold.summary.content_digest()

        # The reuse report is exactly the manifest intersection/differences.
        drift_manifest = set(service.component_manifest(drifted))
        assert set(report.reused_components) == base_manifest & drift_manifest
        assert set(report.solved_components) == drift_manifest - base_manifest
        assert set(report.retired_components) == base_manifest - drift_manifest
        assert report.parent_fingerprint == base_fingerprint

        # The new epoch is linked to its parent (identity drift excepted).
        if report.fingerprint != base_fingerprint:
            chain = service.store.list_lineage(report.fingerprint)
            assert chain[1]["fingerprint"] == base_fingerprint

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_tpcds_drift(self, tpcds_drift_env, tpcds_drift_service, data):
        self.check(tpcds_drift_env, tpcds_drift_service, data.draw)

    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_job_drift(self, job_drift_env, job_drift_service, data):
        self.check(job_drift_env, job_drift_service, data.draw)


# ---------------------------------------------------------------------- #
# provenance plumbing
# ---------------------------------------------------------------------- #
class TestProvenance:
    def test_component_keys_round_trip_serialisation(self):
        summary = DatabaseSummary(
            relations={"S": RelationSummary("S", "S_pk", ("A",),
                                            [((1,), 10)])},
            component_keys={"S": ["k2", "k1"], "T": []},
        )
        clone = DatabaseSummary.from_dict(
            json.loads(json.dumps(summary.to_dict())))
        assert clone.component_keys == {"S": ["k2", "k1"], "T": []}
        assert clone.component_manifest() == ["k1", "k2"]

    def test_content_dict_ignores_timings_only(self):
        summary = DatabaseSummary(component_keys={"S": ["k"]},
                                  timings={"total": 1.5})
        other = DatabaseSummary(component_keys={"S": ["k"]},
                                timings={"total": 9.9})
        assert summary.content_dict() == other.content_dict()
        assert summary.content_digest() == other.content_digest()
        changed = DatabaseSummary(component_keys={"S": ["other"]},
                                  timings={"total": 1.5})
        assert summary.content_digest() != changed.content_digest()

    def test_scale_summary_preserves_component_provenance(self):
        """Regression: scaling used to drop the provenance fields."""
        schema = make_toy_schema()
        summary = DatabaseSummary(
            relations={
                "S": RelationSummary("S", "S_pk", ("A", "B"),
                                     [((5, 1), 100), ((9, 2), 50)]),
            },
            extra_tuples={"S": 3},
            lp_variable_counts={"S": 7},
            timings={"total": 0.5},
            component_keys={"S": ["ck-a", "ck-b"]},
        )
        scaled = scale_summary(summary, schema, 2.0)
        assert scaled.component_keys == {"S": ["ck-a", "ck-b"]}
        assert scaled.extra_tuples == {"S": 3}
        assert scaled.lp_variable_counts == {"S": 7}
        assert scaled.component_manifest() == summary.component_manifest()
        # Deep copy: mutating the scaled provenance leaves the original be.
        scaled.component_keys["S"].append("ck-c")
        assert summary.component_keys["S"] == ["ck-a", "ck-b"]


# ---------------------------------------------------------------------- #
# manifest fingerprinting
# ---------------------------------------------------------------------- #
class TestManifest:
    def test_manifest_diff_partitions_the_union(self):
        diff = manifest_diff(["a", "b", "c"], ["b", "c", "d"])
        assert diff == ManifestDiff(reused=["b", "c"], added=["d"],
                                    retired=["a"])
        assert diff.total == 3

    def test_manifest_fingerprint_is_order_insensitive(self):
        assert (manifest_fingerprint(["x", "y"])
                == manifest_fingerprint(["y", "x"]))
        assert (manifest_fingerprint(["x"])
                != manifest_fingerprint(["x", "y"]))

    def test_component_manifest_of_models_is_sorted_union(self):
        from repro.lp.model import LPModel

        model = LPModel(name="m", num_variables=2)
        model.add_constraint([0], 1)
        model.add_constraint([1], 2)
        manifest = component_manifest([model])
        assert manifest == sorted(manifest)
        assert len(manifest) == 2


# ---------------------------------------------------------------------- #
# store lineage and GC
# ---------------------------------------------------------------------- #
class TestStoreLineage:
    def put(self, store, fingerprint, **meta):
        summary = DatabaseSummary(
            relations={"S": RelationSummary("S", "S_pk", ("A",),
                                            [((1,), 5)])},
            component_keys={"S": [f"key-{fingerprint}"]},
        )
        store.put_summary(fingerprint, summary, meta=meta or None)
        return summary

    def test_link_parent_records_walkable_lineage(self, tmp_path):
        store = SummaryStore(tmp_path / "store")
        self.put(store, "epoch-a")
        self.put(store, "epoch-b")
        self.put(store, "epoch-c")
        store.link_parent("epoch-b", "epoch-a")
        store.link_parent("epoch-c", "epoch-b")
        assert store.parent_fingerprint("epoch-c") == "epoch-b"
        assert store.parent_fingerprint("epoch-a") is None
        chain = store.list_lineage("epoch-c")
        assert [link["fingerprint"] for link in chain] == \
            ["epoch-c", "epoch-b", "epoch-a"]
        assert all(link["present"] for link in chain)

    def test_link_survives_store_reopen(self, tmp_path):
        store = SummaryStore(tmp_path / "store")
        self.put(store, "parent")
        self.put(store, "child")
        store.link_parent("child", "parent")
        reopened = SummaryStore(tmp_path / "store")
        assert reopened.parent_fingerprint("child") == "parent"

    def test_link_parent_requires_a_stored_child(self):
        store = SummaryStore()
        with pytest.raises(SummaryStoreError):
            store.link_parent("ghost", "parent")

    def test_lineage_reports_missing_ancestors(self):
        store = SummaryStore()
        self.put(store, "child")
        store.link_parent("child", "evicted-parent")
        chain = store.list_lineage("child")
        assert chain[0]["present"] is True
        assert chain[1] == {"fingerprint": "evicted-parent", "present": False}

    def test_lineage_breaks_cycles(self):
        store = SummaryStore()
        self.put(store, "a")
        self.put(store, "b")
        store.link_parent("a", "b")
        store.link_parent("b", "a")
        chain = store.list_lineage("a")
        assert [link["fingerprint"] for link in chain] == ["a", "b"]

    def test_gc_keeps_lineage_of_pinned_epochs(self, tmp_path):
        store = SummaryStore(tmp_path / "store")
        self.put(store, "grandparent")
        self.put(store, "parent")
        self.put(store, "live")
        self.put(store, "unrelated")
        store.link_parent("parent", "grandparent")
        store.link_parent("live", "parent")
        store.pin("live")
        try:
            store.compact(max_entries=1)
            kept = set(store.summary_fingerprints())
            # The live epoch's whole chain survives; the unrelated entry is
            # the only eviction candidate.
            assert {"live", "parent", "grandparent"} <= kept
            assert "unrelated" not in kept
        finally:
            store.unpin("live")
        # Unpinned, the chain ages out like any other entries.
        store.compact(max_entries=1)
        assert len(store.summary_fingerprints()) <= 1


# ---------------------------------------------------------------------- #
# service resummarize / diff
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def toy_store(tmp_path_factory):
    """A store warmed with the toy base epoch by a throwaway service."""
    schema = make_toy_schema()
    store = str(tmp_path_factory.mktemp("toy-epochs"))
    with RegenerationService(schema, store=store) as builder:
        builder.summarize(toy_ccs(), timeout=300)
        base_fingerprint = builder.fingerprint(toy_ccs())
    return SimpleNamespace(schema=schema, store=store,
                           base_fingerprint=base_fingerprint)


class TestServiceResummarize:
    def test_reuses_cached_solutions_and_counts_components(self, toy_store):
        with RegenerationService(toy_store.schema,
                                 store=toy_store.store) as service:
            before = service.stats()
            report = service.resummarize(toy_store.base_fingerprint,
                                         toy_drifted(), timeout=300)
            after = service.stats()

            assert not report.warm
            assert report.fingerprint != toy_store.base_fingerprint
            assert len(report.reused_components) > 0
            # Unchanged components never reach the solver: the only solves
            # are (at most) the added components, and the reused ones are
            # solution-cache hits.
            solved = after["solver_components_solved"] \
                - before["solver_components_solved"]
            assert solved <= len(report.solved_components)
            hits = after["solver_cache_hits"] - before["solver_cache_hits"]
            assert hits >= len(report.reused_components)
            # The service counters mirror the report.
            assert after["components_reused"] - before["components_reused"] \
                == len(report.reused_components)
            assert after["components_resolved"] \
                - before["components_resolved"] \
                == len(report.solved_components)
            # Same content as a cold build of the drifted workload.
            cold = Session(toy_store.schema).summarize(toy_drifted())
            assert report.summary.content_digest() \
                == cold.summary.content_digest()

    def test_warm_epoch_counts_full_reuse_and_zero_solves(self, toy_store):
        with RegenerationService(toy_store.schema,
                                 store=toy_store.store) as service:
            first = service.resummarize(toy_store.base_fingerprint,
                                        toy_drifted(), timeout=300)
            before = service.stats()
            again = service.resummarize(toy_store.base_fingerprint,
                                        toy_drifted(), timeout=300)
            after = service.stats()
            assert again.warm
            assert again.fingerprint == first.fingerprint
            assert after["components_reused"] - before["components_reused"] \
                == again.total_components
            assert after["components_resolved"] \
                == before["components_resolved"]
            assert after["solver_components_solved"] \
                == before["solver_components_solved"]

    def test_missing_base_raises(self, toy_store):
        with RegenerationService(toy_store.schema,
                                 store=toy_store.store) as service:
            with pytest.raises(ServiceError):
                service.resummarize("0" * 64, toy_drifted())

    def test_diff_matches_report_and_lineage_links_parent(self, toy_store):
        with RegenerationService(toy_store.schema,
                                 store=toy_store.store) as service:
            report = service.resummarize(toy_store.base_fingerprint,
                                         toy_drifted(), timeout=300)
            diff = service.diff(toy_store.base_fingerprint,
                                report.fingerprint)
            assert tuple(diff.reused) == report.reused_components
            assert tuple(diff.added) == report.solved_components
            assert tuple(diff.retired) == report.retired_components
            chain = service.store.list_lineage(report.fingerprint)
            assert chain[1]["fingerprint"] == toy_store.base_fingerprint
            with pytest.raises(ServiceError):
                service.diff(toy_store.base_fingerprint, "f" * 64)

    def test_counters_and_span_are_observable(self, toy_store):
        tracer = get_tracer()
        previous = tracer.sample
        tracer.clear()
        tracer.configure(sample=1.0)
        try:
            with RegenerationService(toy_store.schema,
                                     store=toy_store.store) as service:
                service.resummarize(toy_store.base_fingerprint,
                                    toy_drifted(), timeout=300)
                text = service.registry.to_prometheus()
                assert "repro_service_components_reused_total" in text
                assert "repro_service_components_resolved_total" in text
            names = {record["name"] for record in tracer.spans()}
            assert "service.resummarize" in names
        finally:
            tracer.configure(sample=previous)
            tracer.clear()


# ---------------------------------------------------------------------- #
# Session facade
# ---------------------------------------------------------------------- #
class TestSessionEpochs:
    def test_resummarize_diff_and_lineage(self, tmp_path):
        schema = make_toy_schema()
        session = Session(schema, store=str(tmp_path / "store"))
        base = session.summarize(toy_ccs())
        handle = session.resummarize(base.fingerprint, toy_drifted())
        assert handle.diagnostics["parent_fingerprint"] == base.fingerprint
        assert handle.diagnostics["components_reused"] > 0
        cold = Session(schema).summarize(toy_drifted())
        assert handle.summary.content_digest() \
            == cold.summary.content_digest()

        diff = session.diff(base.fingerprint, handle.fingerprint)
        assert isinstance(diff, EpochDiff)
        assert len(diff.reused) == handle.diagnostics["components_reused"]
        assert len(diff.added) == handle.diagnostics["components_solved"]
        assert 0.0 < diff.reuse_ratio <= 1.0
        assert diff.total == len(diff.reused) + len(diff.added)

        chain = session.lineage(handle.fingerprint)
        assert [link["fingerprint"] for link in chain] == \
            [handle.fingerprint, base.fingerprint]

    def test_requires_a_store(self):
        session = Session(make_toy_schema())
        with pytest.raises(ServiceError):
            session.resummarize("f" * 64, toy_drifted())
        with pytest.raises(ServiceError):
            session.diff("f" * 64, "0" * 64)

    def test_missing_base_raises(self, tmp_path):
        session = Session(make_toy_schema(), store=str(tmp_path / "store"))
        with pytest.raises(ServiceError):
            session.resummarize("f" * 64, toy_drifted())


# ---------------------------------------------------------------------- #
# HTTP endpoint
# ---------------------------------------------------------------------- #
def http_post_json(server: RegenerationServer, path: str,
                   payload: dict) -> SimpleNamespace:
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return SimpleNamespace(status=response.status,
                                   body=json.loads(response.read()))
    except urllib.error.HTTPError as error:
        return SimpleNamespace(status=error.code,
                               body=json.loads(error.read()))


class TestHTTPResummarize:
    def test_contracts(self, toy_store):
        wire = constraint_set_to_wire(toy_drifted())
        with RegenerationService(toy_store.schema,
                                 store=toy_store.store) as service:
            with RegenerationServer(service) as server:
                response = http_post_json(server, "/v1/resummarize", {
                    "base_fingerprint": toy_store.base_fingerprint,
                    "workload": wire,
                })
                assert response.status == 200
                body = response.body
                assert body["parent_fingerprint"] \
                    == toy_store.base_fingerprint
                assert body["components_reused"] > 0
                assert body["components_total"] == \
                    body["components_reused"] + body["components_solved"]
                cold = Session(toy_store.schema).summarize(toy_drifted())
                assert body["content_digest"] \
                    == cold.summary.content_digest()

                # Unknown base: 404, never a cold base build.
                response = http_post_json(server, "/v1/resummarize", {
                    "base_fingerprint": "f" * 64, "workload": wire})
                assert response.status == 404

                # Malformed body: 400.
                response = http_post_json(server, "/v1/resummarize",
                                          {"workload": wire})
                assert response.status == 400
                response = http_post_json(server, "/v1/resummarize", {
                    "base_fingerprint": toy_store.base_fingerprint,
                    "workload": {"bogus": True}})
                assert response.status == 400

    def test_require_warm_refuses_cold_drift_with_409(self, toy_store):
        with RegenerationService(toy_store.schema,
                                 store=toy_store.store) as service:
            cold_drift = ConstraintSet(
                list(toy_drifted().constraints)
                + [CardinalityConstraint("S", col("B").between(30, 40), 77)],
                name="cold-drift")
            assert not service.store.has_summary(
                service.fingerprint(cold_drift))
            with RegenerationServer(service, require_warm=True) as server:
                response = http_post_json(server, "/v1/resummarize", {
                    "base_fingerprint": toy_store.base_fingerprint,
                    "workload": constraint_set_to_wire(cold_drift),
                })
                assert response.status == 409
                assert "require_warm" in response.body["error"]
