"""Unit and property tests for intervals and interval sets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PredicateError
from repro.predicates.interval import Interval, IntervalSet, elementary_segments


# ---------------------------------------------------------------------- #
# Interval
# ---------------------------------------------------------------------- #
class TestInterval:
    def test_width_and_contains(self):
        iv = Interval(3, 8)
        assert iv.width == 5
        assert len(iv) == 5
        assert iv.contains(3)
        assert iv.contains(7)
        assert not iv.contains(8)
        assert not iv.contains(2)

    def test_empty_interval_rejected(self):
        with pytest.raises(PredicateError):
            Interval(5, 5)
        with pytest.raises(PredicateError):
            Interval(6, 5)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(3, 7))
        assert not Interval(0, 10).contains_interval(Interval(3, 12))

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 9))
        assert not Interval(0, 5).overlaps(Interval(5, 9))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 3).intersect(Interval(3, 9)) is None

    def test_subtract_middle(self):
        pieces = Interval(0, 10).subtract(Interval(3, 7))
        assert pieces == [Interval(0, 3), Interval(7, 10)]

    def test_subtract_disjoint(self):
        assert Interval(0, 5).subtract(Interval(7, 9)) == [Interval(0, 5)]

    def test_subtract_covering(self):
        assert Interval(3, 5).subtract(Interval(0, 10)) == []

    def test_split_at(self):
        pieces = Interval(0, 10).split_at([3, 7, 0, 10, 15])
        assert pieces == [Interval(0, 3), Interval(3, 7), Interval(7, 10)]

    def test_split_at_no_points(self):
        assert Interval(0, 10).split_at([]) == [Interval(0, 10)]


# ---------------------------------------------------------------------- #
# IntervalSet
# ---------------------------------------------------------------------- #
class TestIntervalSet:
    def test_normalisation_merges_overlaps(self):
        s = IntervalSet([Interval(5, 10), Interval(0, 6)])
        assert s.intervals == (Interval(0, 10),)

    def test_normalisation_merges_adjacent(self):
        s = IntervalSet([Interval(0, 5), Interval(5, 10)])
        assert s.intervals == (Interval(0, 10),)

    def test_point_and_contains(self):
        s = IntervalSet.point(4)
        assert s.contains(4)
        assert not s.contains(5)
        assert s.width == 1

    def test_union_intersect(self):
        a = IntervalSet.single(0, 10)
        b = IntervalSet.single(5, 15)
        assert a.union(b).intervals == (Interval(0, 15),)
        assert a.intersect(b).intervals == (Interval(5, 10),)

    def test_complement(self):
        s = IntervalSet([Interval(2, 4), Interval(6, 8)])
        comp = s.complement(Interval(0, 10))
        assert comp.intervals == (Interval(0, 2), Interval(4, 6), Interval(8, 10))

    def test_complement_of_empty(self):
        assert IntervalSet.empty().complement(Interval(0, 5)).intervals == (Interval(0, 5),)

    def test_covers_and_overlaps(self):
        s = IntervalSet([Interval(0, 5), Interval(10, 20)])
        assert s.covers(Interval(11, 15))
        assert not s.covers(Interval(4, 11))
        assert s.overlaps(Interval(4, 11))
        assert not s.overlaps(Interval(5, 10))

    def test_minimum(self):
        assert IntervalSet([Interval(7, 9), Interval(2, 3)]).minimum() == 2
        with pytest.raises(PredicateError):
            IntervalSet.empty().minimum()

    def test_boundaries(self):
        s = IntervalSet([Interval(1, 3), Interval(5, 9)])
        assert s.boundaries() == [1, 3, 5, 9]

    def test_equality_and_hash(self):
        a = IntervalSet([Interval(0, 5)])
        b = IntervalSet([Interval(0, 3), Interval(3, 5)])
        assert a == b
        assert hash(a) == hash(b)


# ---------------------------------------------------------------------- #
# elementary segments
# ---------------------------------------------------------------------- #
def test_elementary_segments_cover_domain():
    domain = Interval(0, 100)
    segments = elementary_segments(domain, [10, 40, 40, 200, -5])
    assert segments[0].lo == 0 and segments[-1].hi == 100
    assert sum(s.width for s in segments) == domain.width
    assert len(segments) == 3


# ---------------------------------------------------------------------- #
# property-based tests
# ---------------------------------------------------------------------- #
interval_strategy = st.builds(
    lambda lo, width: Interval(lo, lo + width),
    st.integers(-1000, 1000),
    st.integers(1, 500),
)


@given(st.lists(interval_strategy, min_size=0, max_size=8))
@settings(max_examples=200)
def test_intervalset_width_equals_point_count(intervals):
    s = IntervalSet(intervals)
    points = set()
    for iv in intervals:
        points.update(range(iv.lo, iv.hi))
    assert s.width == len(points)


@given(st.lists(interval_strategy, min_size=0, max_size=6), interval_strategy)
@settings(max_examples=200)
def test_complement_partitions_domain(intervals, domain):
    s = IntervalSet(intervals).intersect_interval(domain)
    comp = s.complement(domain)
    # complement and original are disjoint and together cover the domain
    assert s.intersect(comp).is_empty
    assert s.width + comp.width == domain.width


@given(st.lists(interval_strategy, min_size=1, max_size=6),
       st.lists(interval_strategy, min_size=1, max_size=6))
@settings(max_examples=200)
def test_intersection_symmetric_and_contained(first, second):
    a, b = IntervalSet(first), IntervalSet(second)
    cap = a.intersect(b)
    assert cap == b.intersect(a)
    for iv in cap:
        assert a.covers(iv)
        assert b.covers(iv)
