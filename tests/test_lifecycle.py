"""Tests for store lifecycle management (GC/TTL/size caps, pinning) and the
regeneration service's weighted-fair admission scheduling.

Covers the serving-fleet hardening acceptance criteria: a size-capped store
stays under its cap after ``compact()`` and evicts strictly LRU-first; a
pinned / in-flight entry is never evicted mid-read; a noisy tenant's cold
burst is throttled while a quiet tenant keeps being admitted; and the
admission/GC counters account every admit, reject, eviction and failure
exactly — including under concurrent mixed warm/cold/failing traffic.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

import pytest

from repro.api.backends import BackendBuild, PipelineBackend, register_backend
from repro.api.config import RegenConfig
from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SummaryStoreError,
)
from repro.predicates.dnf import DNFPredicate
from repro.service.fingerprint import workload_fingerprint
from repro.service.service import RegenerationService
from repro.service.store import SummaryStore
from repro.summary.relation_summary import DatabaseSummary, RelationSummary


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def make_summary(rows: int = 100, values: int = 4) -> DatabaseSummary:
    """A small synthetic one-relation summary (regenerates ``rows`` rows)."""
    summary = DatabaseSummary()
    per_row = max(1, rows // values)
    summary.relations["S"] = RelationSummary(
        relation="S", primary_key="S_pk", columns=("A",),
        rows=[((i,), per_row) for i in range(values)],
    )
    return summary


def make_ccs(cardinality: int, name: str = "ccs") -> ConstraintSet:
    """Distinct cardinalities produce distinct request fingerprints."""
    ccs = ConstraintSet(name=name)
    ccs.add(CardinalityConstraint("S", DNFPredicate.true(), cardinality))
    return ccs


def put_with_time(store: SummaryStore, fingerprint: str,
                  summary: DatabaseSummary, at: float) -> None:
    """Persist an entry and pin its recency to an explicit timestamp."""
    store.put_summary(fingerprint, summary)
    store._touch("summaries", fingerprint, now=at)


class _RecordingBackend(PipelineBackend):
    """Registry backend for scheduling tests: fast synthetic builds, an
    optional start gate, a record of build start order, and scripted
    failures (any constraint set whose name contains ``fail`` raises)."""

    name = "lifecycle-test"

    def __init__(self, schema, config, store=None) -> None:
        self.schema = schema
        self.config = config
        self.store = store
        self.gate: "threading.Event | None" = None
        self.started: list = []
        self.first_started = threading.Event()

    def fingerprint(self, constraints, relations=None):
        return workload_fingerprint(self.schema, constraints,
                                    relations=relations, profile=[self.name])

    def build(self, constraints, relations=None):
        self.started.append(constraints.name)
        self.first_started.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        if "fail" in constraints.name:
            raise RuntimeError(f"scripted failure for {constraints.name}")
        summary = make_summary(rows=sum(cc.cardinality for cc in constraints))
        if self.store is not None:
            self.store.put_summary(self.fingerprint(constraints, relations),
                                   summary)
        return BackendBuild(summary=summary)


register_backend("lifecycle-test", _RecordingBackend)


def lifecycle_service(schema, store=None, **kwargs) -> RegenerationService:
    config = kwargs.pop("config", RegenConfig(engine="lifecycle-test"))
    return RegenerationService(schema, store=store, config=config, **kwargs)


# ---------------------------------------------------------------------- #
# store lifecycle: TTL, size caps, LRU order, pinning
# ---------------------------------------------------------------------- #
class TestStoreLifecycle:
    def test_negative_caps_rejected(self, tmp_path):
        with pytest.raises(SummaryStoreError, match="max_entries"):
            SummaryStore(tmp_path / "store", max_entries=-1)

    def test_ttl_expiration(self, tmp_path):
        store = SummaryStore(tmp_path / "store", ttl_seconds=10.0)
        base = time.time()
        put_with_time(store, "a" * 64, make_summary(), base - 60.0)
        put_with_time(store, "b" * 64, make_summary(), base - 1.0)
        report = store.compact(now=base)
        assert report["expired"] == 1 and report["evicted"] == 0
        assert store.summary_fingerprints() == ["b" * 64]
        assert store.get_summary("a" * 64) is None
        assert store.counters()["expirations"] == 1

    def test_eviction_is_strictly_lru_first(self, tmp_path):
        store = SummaryStore(tmp_path / "store")
        base = time.time()
        order = ["d" * 64, "b" * 64, "e" * 64, "a" * 64, "c" * 64]
        for age, fingerprint in enumerate(reversed(order)):
            put_with_time(store, fingerprint, make_summary(), base - age)
        # A warm read refreshes recency: the oldest entry becomes the newest.
        oldest = order[0]
        assert store.get_summary(oldest) is not None
        store._touch("summaries", oldest, now=base + 1)
        report = store.compact(max_entries=2, max_store_bytes=None,
                               ttl_seconds=None, now=base + 2)
        assert report["evicted"] == 3
        assert store.summary_fingerprints() == sorted([oldest, order[-1]])

    def test_size_cap_under_churn_stays_under_cap(self, tmp_path):
        entry_bytes = None
        store = SummaryStore(tmp_path / "store")
        store.put_summary("0" * 64, make_summary())
        entry_bytes = store.store_bytes()
        cap = 3 * entry_bytes + entry_bytes // 2
        store = SummaryStore(tmp_path / "store", max_store_bytes=cap)
        for i in range(1, 12):  # continuous churn of fresh cold builds
            store.put_summary(f"{i:02d}" * 32, make_summary())
            assert store.compact()["store_bytes"] <= cap
            assert store.store_bytes() <= cap
        # Exact accounting: the running counters match a fresh rescan.
        fresh = SummaryStore(tmp_path / "store").counters()
        counters = store.counters()
        assert counters["store_bytes"] == fresh["store_bytes"] <= cap
        assert counters["summaries"] == fresh["summaries"]
        # The most recent entry always survives churn.
        assert f"11" * 32 in store.summary_fingerprints()

    def test_warm_hit_unchanged_for_survivors(self, tmp_path):
        store = SummaryStore(tmp_path / "store", max_entries=1)
        put_with_time(store, "a" * 64, make_summary(), time.time() - 5)
        store.put_summary("b" * 64, make_summary())
        store.compact()
        before = dict(store.stats)
        # The surviving entry still serves straight from the memory layer:
        # a hit, no corruption, no pipeline involvement.
        assert store.get_summary("b" * 64) is not None
        assert store.stats["summary_hits"] == before["summary_hits"] + 1
        assert store.stats["summary_misses"] == before["summary_misses"]
        reopened = SummaryStore(tmp_path / "store")
        assert reopened.get_summary("b" * 64) is not None

    def test_pinned_entry_never_evicted(self, tmp_path):
        store = SummaryStore(tmp_path / "store")
        base = time.time()
        put_with_time(store, "a" * 64, make_summary(), base - 100)
        put_with_time(store, "b" * 64, make_summary(), base - 50)
        store.pin("a" * 64)
        try:
            report = store.compact(max_entries=0, max_store_bytes=None,
                                   ttl_seconds=1.0, now=base)
            # "a" is both LRU-oldest and TTL-expired, yet pinned: survives.
            assert store.summary_fingerprints() == ["a" * 64]
            assert report["expired"] == 1 and report["evicted"] == 0
        finally:
            store.unpin("a" * 64)
        report = store.compact(max_entries=0, max_store_bytes=None,
                               ttl_seconds=None, now=base)
        assert report["evicted"] == 1
        assert store.summary_fingerprints() == []

    def test_touch_files_share_recency_across_processes(self, tmp_path):
        base = time.time()
        writer = SummaryStore(tmp_path / "store")
        put_with_time(writer, "a" * 64, make_summary(), base - 100)
        put_with_time(writer, "b" * 64, make_summary(), base - 10)
        # A *different* store instance (= another process on the shared
        # filesystem) reads "a", refreshing its on-disk recency marker.
        reader = SummaryStore(tmp_path / "store")
        assert reader.get_summary("a" * 64) is not None
        report = writer.compact(max_entries=1, max_store_bytes=None,
                                ttl_seconds=None)
        assert report["evicted"] == 1
        # The writer honours the reader's touch: "b" was the LRU entry.
        assert writer.summary_fingerprints() == ["a" * 64]

    def test_memory_only_lifecycle(self):
        store = SummaryStore(None, max_entries=2)
        base = time.time()
        for age, key in enumerate(("c" * 64, "b" * 64, "a" * 64)):
            store.put_summary(key, make_summary())
            store._touch("summaries", key, now=base - (3 - age))
        assert store.counters()["summaries"] == 2  # auto-compacted on put
        report = store.compact(max_entries=1, max_store_bytes=None,
                               ttl_seconds=None, now=base)
        assert report["evicted"] == 1
        assert store.summary_fingerprints() == ["a" * 64]
        report = store.compact(max_entries=None, max_store_bytes=None,
                               ttl_seconds=0.5, now=base + 10)
        assert report["expired"] == 1
        assert store.counters()["summaries"] == 0
        assert store.counters()["store_bytes"] == 0

    def test_compact_skips_entries_touched_after_scan(self, tmp_path,
                                                      monkeypatch):
        # Regression: a GC pass deciding on a stale recency snapshot must
        # not expire/evict an entry that was warm-hit (or rebuilt) between
        # the scan and the unlink.
        store = SummaryStore(tmp_path / "store")
        base = time.time()
        put_with_time(store, "a" * 64, make_summary(), base - 100)
        put_with_time(store, "b" * 64, make_summary(), base - 90)
        original_scan = store._scan_candidates

        def scan_then_touch():
            candidates = original_scan()
            # A warm hit lands right after the scan, before any deletion.
            store._touch("summaries", "a" * 64, now=base)
            return candidates

        monkeypatch.setattr(store, "_scan_candidates", scan_then_touch)
        report = store.compact(max_store_bytes=None, max_entries=None,
                               ttl_seconds=50.0, now=base)
        # Only the untouched entry expired; the just-used one survived.
        assert report["expired"] == 1
        assert store.summary_fingerprints() == ["a" * 64]

    def test_compact_sweeps_orphan_touch_files(self, tmp_path):
        store = SummaryStore(tmp_path / "store")
        store.put_summary("a" * 64, make_summary())
        # Another process evicted the entry but its sidecar lingered.
        orphan = store._touch_path("summaries", "b" * 64)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.touch()
        store.compact()
        assert not orphan.exists()
        assert store._touch_path("summaries", "a" * 64).exists()

    def test_touch_never_resurrects_evicted_entries(self, tmp_path):
        writer = SummaryStore(tmp_path / "store")
        writer.put_summary("a" * 64, make_summary())
        reader = SummaryStore(tmp_path / "store")
        assert reader.get_summary("a" * 64) is not None  # now in memory layer
        # Another process evicts the entry (and its sidecar) from disk.
        writer.compact(max_entries=0, max_store_bytes=None, ttl_seconds=None)
        assert not writer._touch_path("summaries", "a" * 64).exists()
        # The reader's memory-layer hit must not re-create the sidecar.
        assert reader.get_summary("a" * 64) is not None
        assert not reader._touch_path("summaries", "a" * 64).exists()

    def test_compact_counts_are_exact(self, tmp_path):
        store = SummaryStore(tmp_path / "store")
        base = time.time()
        for i in range(6):
            put_with_time(store, f"{i}" * 64, make_summary(), base - 50 + i)
        report = store.compact(max_entries=2, max_store_bytes=None,
                               ttl_seconds=45.0, now=base)
        # 0..4 are older than the TTL? no: ages are 50-i seconds; 45s TTL
        # expires i=0..4 (ages 50..46); i=5 (age 45.0) is exactly at the
        # boundary and survives both passes.
        assert report["expired"] == 5
        assert report["evicted"] == 0
        assert store.counters()["expirations"] == 5
        assert store.counters()["evictions"] == 0
        assert store.summary_fingerprints() == ["5" * 64]
        assert store.counters()["store_bytes"] == \
            SummaryStore(tmp_path / "store").counters()["store_bytes"]


# ---------------------------------------------------------------------- #
# submission-failure bugfix: no hung waiters, no leaked slots
# ---------------------------------------------------------------------- #
class TestSubmitFailure:
    def test_pool_shutdown_racing_submit_fails_the_flight(self, toy_schema):
        service = lifecycle_service(toy_schema, max_pending=1)
        # Simulate the race: the raw pool is torn down without close().
        service._executor.shutdown(wait=True)
        ticket = service.submit(make_ccs(100))
        assert ticket.done()
        with pytest.raises(ServiceClosedError, match="worker pool rejected"):
            ticket.result(timeout=1.0)
        stats = service.stats()
        assert stats["pipeline_failures"] == 1
        assert stats["pipeline_runs"] == 0
        # The fingerprint was unregistered and the max_pending slot did not
        # leak: a fresh submission is admitted (and fails the same way,
        # rather than being rejected as over-capacity).
        assert service._flights == {}
        ticket2 = service.submit(make_ccs(200))
        with pytest.raises(ServiceClosedError):
            ticket2.result(timeout=1.0)
        assert service.stats()["rejected_submissions"] == 0

    def test_submit_after_close_raises_closed(self, toy_schema, tmp_path):
        store = SummaryStore(tmp_path / "store")
        service = lifecycle_service(toy_schema, store=store)
        warm_ccs = make_ccs(100)
        service.summarize(warm_ccs, timeout=30)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(make_ccs(999))
        # Warm serving keeps working after close.
        ticket = service.submit(warm_ccs)
        assert ticket.warm and ticket.result(timeout=1.0) is not None

    def test_build_failures_are_counted(self, toy_schema):
        with lifecycle_service(toy_schema) as service:
            ticket = service.submit(make_ccs(7, name="fail-7"))
            with pytest.raises(RuntimeError, match="scripted failure"):
                ticket.result(timeout=30)
            stats = service.stats()
            assert stats["pipeline_failures"] == 1
            assert stats["pipeline_runs"] == 1
            assert service._flights == {}
            row = service.service_stats().tenant("default")
            assert row.failed == 1 and row.completed == 0


# ---------------------------------------------------------------------- #
# weighted-fair admission
# ---------------------------------------------------------------------- #
class TestFairAdmission:
    def test_noisy_tenant_throttled_quiet_tenant_admitted(self, toy_schema):
        service = lifecycle_service(toy_schema, max_workers=1,
                                    max_pending_per_tenant=2)
        gate = threading.Event()
        service.backend.gate = gate
        tickets = []
        tickets.append(service.submit(make_ccs(101), tenant="noisy"))
        service.backend.first_started.wait(timeout=30)
        tickets.append(service.submit(make_ccs(102), tenant="noisy"))
        for cardinality in (103, 104):  # cold burst beyond the tenant cap
            with pytest.raises(ServiceOverloadedError, match="noisy"):
                service.submit(make_ccs(cardinality), tenant="noisy")
        # The quiet tenant is not starved by the noisy burst.
        tickets.append(service.submit(make_ccs(201), tenant="quiet"))
        gate.set()
        for ticket in tickets:
            assert ticket.result(timeout=30) is not None
        stats = service.service_stats()
        noisy, quiet = stats.tenant("noisy"), stats.tenant("quiet")
        assert noisy.admitted == 2 and noisy.rejected == 2
        assert noisy.completed == 2 and noisy.failed == 0
        assert quiet.admitted == 1 and quiet.rejected == 0
        assert quiet.completed == 1
        counters = stats.counters
        # Every request is accounted exactly once.
        assert counters["requests"] == 5
        assert counters["misses"] == noisy.admitted + quiet.admitted == 3
        assert counters["rejected_submissions"] == noisy.rejected == 2
        assert counters["pipeline_runs"] == 3
        assert counters["queue_depth"] == 0
        service.close()

    def test_fifo_within_tenant_round_robin_across(self, toy_schema):
        service = lifecycle_service(toy_schema, max_workers=1)
        backend = service.backend
        gate = threading.Event()
        backend.gate = gate
        first = service.submit(make_ccs(100, name="a-0"), tenant="a")
        backend.first_started.wait(timeout=30)
        later = [
            service.submit(make_ccs(101, name="a-1"), tenant="a"),
            service.submit(make_ccs(102, name="a-2"), tenant="a"),
            service.submit(make_ccs(200, name="b-0"), tenant="b"),
        ]
        gate.set()
        for ticket in [first, *later]:
            ticket.result(timeout=30)
        # Tenant b activates at a's clock (one dispatch), so from b's
        # arrival the slots alternate fairly — b's build runs ahead of a's
        # backlog tail — while a's own builds stay FIFO.
        assert backend.started == ["a-0", "a-1", "b-0", "a-2"]
        service.close()

    def test_new_tenant_gets_no_catch_up_credit(self, toy_schema):
        # Regression: with lifetime dispatch counts, a tenant first seen
        # late in a busy period started at 0 and monopolised every build
        # slot until it "caught up".  Clocks now start at the least-served
        # active tenant's clock, so slots alternate from arrival onward.
        service = lifecycle_service(toy_schema, max_workers=1)
        backend = service.backend
        gate = threading.Event()
        backend.gate = gate
        first = service.submit(make_ccs(100, name="old-0"), tenant="old")
        backend.first_started.wait(timeout=30)
        established = [
            service.submit(make_ccs(101 + i, name=f"old-{1 + i}"), tenant="old")
            for i in range(3)
        ]
        newcomer = [
            service.submit(make_ccs(200 + i, name=f"new-{i}"), tenant="new")
            for i in range(3)
        ]
        gate.set()
        for ticket in [first, *established, *newcomer]:
            ticket.result(timeout=30)
        # The newcomer's backlog must not run as one uninterrupted block
        # ahead of the established tenant's queued builds.
        tail = backend.started[1:]
        assert tail != ["new-0", "new-1", "new-2", "old-1", "old-2", "old-3"]
        assert sum(1 for name in tail[:4] if name.startswith("old")) >= 2
        service.close()

    def test_tenant_weights_bias_dispatch(self, toy_schema):
        service = lifecycle_service(
            toy_schema, max_workers=1,
            tenant_weights={"heavy": 2, "light": 1},
        )
        backend = service.backend
        gate = threading.Event()
        backend.gate = gate
        warmup = service.submit(make_ccs(1, name="warmup"), tenant="other")
        backend.first_started.wait(timeout=30)
        tickets = [
            service.submit(make_ccs(100 + i, name=f"heavy-{i}"), tenant="heavy")
            for i in range(3)
        ] + [
            service.submit(make_ccs(200 + i, name=f"light-{i}"), tenant="light")
            for i in range(3)
        ]
        gate.set()
        for ticket in [warmup, *tickets]:
            ticket.result(timeout=30)
        dispatched = backend.started[1:]  # drop the warmup build
        # Weight 2 vs 1: heavy gets 3 of the first 4 slots under contention.
        assert sum(1 for name in dispatched[:4] if name.startswith("heavy")) == 3
        assert [n for n in dispatched if n.startswith("heavy")] == \
            ["heavy-0", "heavy-1", "heavy-2"]  # FIFO within the tenant
        service.close()

    def test_single_flight_dedups_across_tenants(self, toy_schema):
        service = lifecycle_service(toy_schema, max_workers=1)
        gate = threading.Event()
        service.backend.gate = gate
        ccs = make_ccs(42)
        one = service.submit(ccs, tenant="a")
        service.backend.first_started.wait(timeout=30)
        two = service.submit(ccs, tenant="b")
        assert two.fingerprint == one.fingerprint
        gate.set()
        assert two.result(timeout=30) is one.result(timeout=30)
        stats = service.stats()
        assert stats["inflight_dedup"] == 1 and stats["pipeline_runs"] == 1
        service.close()


# ---------------------------------------------------------------------- #
# service-level GC and stream pinning
# ---------------------------------------------------------------------- #
class TestServiceGC:
    def test_gc_respects_inflight_stream_then_collects(self, toy_schema, tmp_path):
        store = SummaryStore(tmp_path / "store")
        with lifecycle_service(toy_schema, store=store) as service:
            ccs = make_ccs(100)
            fingerprint = service.submit(ccs).fingerprint
            service.summarize(ccs, timeout=30)
            cursor = service.stream(fingerprint, "S", batch_size=25)
            rows = next(cursor).num_rows  # mid-read: the entry is pinned
            assert store.pin_count(fingerprint) == 1
            report = store.compact(max_entries=0, max_store_bytes=None,
                                   ttl_seconds=None)
            assert report["evicted"] == 0
            assert store.has_summary(fingerprint)
            for batch in cursor:  # eviction never broke the stream
                rows += batch.num_rows
            assert rows == 100
            assert store.pin_count(fingerprint) == 0
            report = store.compact(max_entries=0, max_store_bytes=None,
                                   ttl_seconds=None)
            assert report["evicted"] == 1
            assert not store.has_summary(fingerprint)

    def test_stream_pins_eagerly_before_first_batch(self, toy_schema, tmp_path):
        # Regression: the pin used to be taken lazily at the cursor's first
        # next(), leaving a window in which GC could evict the entry of a
        # handed-out-but-not-yet-iterated stream.
        store = SummaryStore(tmp_path / "store")
        with lifecycle_service(toy_schema, store=store) as service:
            ccs = make_ccs(100)
            fingerprint = service.submit(ccs).fingerprint
            service.summarize(ccs, timeout=30)
            cursor = service.stream(fingerprint, "S", batch_size=25)
            assert store.pin_count(fingerprint) == 1  # pinned before next()
            report = store.compact(max_entries=0, max_store_bytes=None,
                                   ttl_seconds=None)
            assert report["evicted"] == 0 and store.has_summary(fingerprint)
            assert sum(b.num_rows for b in cursor) == 100
            assert store.pin_count(fingerprint) == 0
            # An abandoned cursor releases its pin on close() too.
            abandoned = service.stream(fingerprint, "S", batch_size=25)
            assert store.pin_count(fingerprint) == 1
            abandoned.close()
            assert store.pin_count(fingerprint) == 0

    def test_background_gc_thread_expires_entries(self, toy_schema, tmp_path):
        store = SummaryStore(tmp_path / "store", ttl_seconds=0.05)
        service = lifecycle_service(toy_schema, store=store, gc_interval=0.05)
        try:
            put_with_time(store, "a" * 64, make_summary(),
                          time.time() - 10.0)
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if service.stats()["expirations"] >= 1:
                    break
                time.sleep(0.02)
            stats = service.stats()
            assert stats["gc_runs"] >= 1
            assert stats["expirations"] >= 1
            assert not store.has_summary("a" * 64)
        finally:
            service.close()
        # The GC thread is stopped by close().
        assert service._gc_thread is not None
        assert not service._gc_thread.is_alive()


# ---------------------------------------------------------------------- #
# concurrent stress: mixed warm/cold/failing traffic under small caps
# ---------------------------------------------------------------------- #
class TestConcurrentStress:
    def test_no_hung_waiters_no_leaked_flights_no_starvation(self, toy_schema,
                                                             tmp_path):
        store = SummaryStore(tmp_path / "store", max_store_bytes=None)
        service = lifecycle_service(toy_schema, store=store, max_workers=2,
                                    max_pending_per_tenant=3)
        warm_ccs = make_ccs(1, name="warm")
        service.summarize(warm_ccs, timeout=30)
        warm_fingerprint = service.fingerprint(warm_ccs)
        warm_rows = service.total_rows(warm_fingerprint, "S")

        outcomes = {"completed": 0, "failed": 0, "rejected": 0, "warm": 0}
        outcome_lock = threading.Lock()
        errors: list = []

        def record(key):
            with outcome_lock:
                outcomes[key] += 1

        def run(tenant, base, count, failing_every):
            for i in range(count):
                kind = "fail" if failing_every and i % failing_every == 0 \
                    else "ok"
                ccs = make_ccs(base + i, name=f"{tenant}-{kind}-{i}")
                try:
                    ticket = service.submit(ccs, tenant=tenant)
                except ServiceOverloadedError:
                    record("rejected")
                    continue
                except BaseException as error:  # pragma: no cover
                    errors.append(error)
                    continue
                try:
                    ticket.result(timeout=30)
                    record("completed")
                except RuntimeError:
                    record("failed")
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

        def run_warm(count):
            for _ in range(count):
                try:
                    ticket = service.submit(warm_ccs, tenant="warm-reader")
                    assert ticket.result(timeout=30) is not None
                    record("warm")
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

        def run_stream(count):
            for _ in range(count):
                try:
                    total = sum(b.num_rows for b in service.stream(
                        warm_fingerprint, "S", batch_size=3))
                    assert total == warm_rows
                    service.gc()  # churn GC under live streams
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

        threads = (
            [threading.Thread(target=run, args=("noisy", 1000 + 100 * i, 12, 4))
             for i in range(3)]
            + [threading.Thread(target=run, args=("quiet", 5000, 4, 0))]
            + [threading.Thread(target=run_warm, args=(10,)),
               threading.Thread(target=run_stream, args=(6,))]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "hung waiter: thread did not finish"
        assert errors == []

        service.close()
        stats = service.service_stats()
        counters = stats.counters
        # No leaked flights or queued builds.
        assert service._flights == {}
        assert counters["queue_depth"] == 0
        # Exact accounting: every submission is admitted, served warm,
        # deduplicated or rejected...
        assert counters["requests"] == counters["misses"] + counters["hits"] \
            + counters["inflight_dedup"] + counters["rejected_submissions"]
        # ...every admitted build completed or failed, per tenant...
        for row in stats.tenants:
            assert row.admitted == row.completed + row.failed
            assert row.queued == 0 and row.running == 0
        assert sum(r.admitted for r in stats.tenants) == counters["misses"]
        assert sum(r.rejected for r in stats.tenants) \
            == counters["rejected_submissions"]
        assert sum(r.failed for r in stats.tenants) \
            == counters["pipeline_failures"]
        # ...and the caller-observed outcomes agree with the telemetry.
        assert outcomes["rejected"] == counters["rejected_submissions"]
        assert outcomes["failed"] == counters["pipeline_failures"]
        # The quiet tenant was never starved: all its submissions admitted
        # (it never holds more than one pending build, far under the cap).
        quiet = stats.tenant("quiet")
        assert quiet.admitted == 4 and quiet.rejected == 0


# ---------------------------------------------------------------------- #
# config / session threading
# ---------------------------------------------------------------------- #
class TestLifecycleConfig:
    def test_config_validates_lifecycle_knobs(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="max_store_bytes"):
            RegenConfig(max_store_bytes=-1)
        with pytest.raises(ConfigError, match="gc_interval"):
            RegenConfig(gc_interval=0)
        config = RegenConfig(max_store_bytes=1 << 20, max_entries=8,
                             ttl_seconds=60.0, gc_interval=5.0,
                             max_pending_per_tenant=2)
        assert config.max_entries == 8

    def test_session_threads_lifecycle_knobs(self, toy_schema, tmp_path):
        from repro.api.session import Session

        config = RegenConfig(engine="lifecycle-test", max_store_bytes=1 << 20,
                             max_entries=8, ttl_seconds=60.0,
                             max_pending_per_tenant=2)
        session = Session(toy_schema, config=config, store=tmp_path / "store")
        assert session.store.max_store_bytes == 1 << 20
        assert session.store.max_entries == 8
        assert session.store.ttl_seconds == 60.0
        with session.serve() as service:
            assert service.store is session.store
            assert service.max_pending_per_tenant == 2
            assert service.gc_interval is None
        with session.serve(max_pending_per_tenant=5, gc_interval=30.0) as service:
            assert service.max_pending_per_tenant == 5
            assert service.gc_interval == 30.0
            assert service._gc_thread is not None

    def test_service_opens_path_store_with_config_caps(self, toy_schema, tmp_path):
        config = RegenConfig(engine="lifecycle-test", max_entries=3,
                             ttl_seconds=120.0)
        with RegenerationService(toy_schema, store=tmp_path / "store",
                                 config=config) as service:
            assert service.store.max_entries == 3
            assert service.store.ttl_seconds == 120.0
