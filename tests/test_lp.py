"""Tests for LP formulation (region and grid) and the feasibility solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constraints.cc import CardinalityConstraint
from repro.errors import InfeasibleLPError, LPError, LPTooLargeError
from repro.lp.formulate import (
    STRATEGY_GRID,
    STRATEGY_REGION,
    count_lp_variables,
    formulate_view_lp,
)
from repro.lp.model import LPModel, LPSolution
from repro.lp.solver import LPSolver, ParallelLPSolver
from repro.predicates.dnf import DNFPredicate, col
from repro.predicates.interval import Interval
from repro.schema.relation import Attribute, Relation
from repro.schema.schema import Schema
from repro.views.preprocess import Preprocessor


@pytest.fixture
def person_schema() -> Schema:
    """A single-relation schema matching the Person example."""
    return Schema([
        Relation(
            name="person", primary_key="p_id", row_count=8000,
            attributes=[
                Attribute("age", Interval(0, 100)),
                Attribute("salary", Interval(0, 100_000)),
            ],
        )
    ])


@pytest.fixture
def person_task(person_schema):
    ccs = [
        CardinalityConstraint(relation="person", cardinality=1000,
                              predicate=(col("age") < 40).conjoin(col("salary") < 40_000)),
        CardinalityConstraint(relation="person", cardinality=2000,
                              predicate=col("age").between(20, 60).conjoin(
                                  col("salary").between(20_000, 60_000))),
        CardinalityConstraint(relation="person", cardinality=8000,
                              predicate=DNFPredicate.true()),
    ]
    return Preprocessor(person_schema).build_task("person", ccs)


class TestFormulation:
    def test_region_formulation_matches_figure_4b(self, person_task):
        view_lp = formulate_view_lp(person_task, strategy=STRATEGY_REGION)
        # Figure 4(b): four variables, three constraints with sums 1000/2000/8000.
        assert view_lp.num_variables == 4
        rhs = sorted(c.rhs for c in view_lp.model.cardinality_constraints())
        assert rhs == [1000, 2000, 8000]
        sizes = sorted(len(c.variables) for c in view_lp.model.cardinality_constraints())
        assert sizes == [2, 2, 4]

    def test_grid_formulation_matches_figure_4a(self, person_task):
        view_lp = formulate_view_lp(person_task, strategy=STRATEGY_GRID)
        assert view_lp.num_variables == 16
        sizes = sorted(len(c.variables) for c in view_lp.model.cardinality_constraints())
        assert sizes == [4, 4, 16]

    def test_count_without_materialisation(self, person_task):
        assert count_lp_variables(person_task, STRATEGY_REGION) == 4
        assert count_lp_variables(person_task, STRATEGY_GRID) == 16

    def test_grid_too_large_raises(self, person_task):
        with pytest.raises(LPTooLargeError):
            formulate_view_lp(person_task, strategy=STRATEGY_GRID, max_grid_variables=10)

    def test_unknown_strategy(self, person_task):
        with pytest.raises(LPError):
            formulate_view_lp(person_task, strategy="voronoi")

    def test_consistency_constraints_added_for_shared_attributes(self, toy_schema):
        pre = Preprocessor(toy_schema)
        ccs = [
            CardinalityConstraint(relation="R", cardinality=100,
                                  predicate=(col("A") >= 10).conjoin(col("B") >= 5)),
            CardinalityConstraint(relation="R", cardinality=60,
                                  predicate=(col("B") >= 5).conjoin(col("C") >= 1)),
            CardinalityConstraint(relation="R", cardinality=80_000,
                                  predicate=DNFPredicate.true()),
        ]
        task = pre.build_task("R", ccs)
        view_lp = formulate_view_lp(task)
        kinds = {c.kind for c in view_lp.model.constraints}
        assert "consistency" in kinds
        assert "B" in view_lp.aligned_attributes
        # consistency rows have +1/-1 coefficients and rhs zero
        for constraint in view_lp.model.constraints:
            if constraint.kind == "consistency":
                assert constraint.rhs == 0
                assert set(constraint.coefficient_list()) <= {1.0, -1.0}


class TestSolver:
    def test_solves_person_lp_exactly(self, person_task):
        view_lp = formulate_view_lp(person_task)
        solution = LPSolver().solve(view_lp.model)
        assert solution.feasible
        assert solution.max_violation == 0.0
        a, b = view_lp.model.matrix()
        assert np.allclose(a.dot(solution.values.astype(float)), b)
        assert (solution.values >= 0).all()

    def test_empty_model(self):
        solution = LPSolver().solve(LPModel(name="empty"))
        assert solution.feasible
        assert solution.values.size == 0

    def test_continuous_fallback_used_above_variable_limit(self, person_task):
        view_lp = formulate_view_lp(person_task)
        solver = LPSolver(milp_variable_limit=1)
        solution = solver.solve(view_lp.model)
        assert solution.method == "linprog+l1"
        assert solution.max_violation <= 1.0

    def test_infeasible_constraints_reported_with_slack(self):
        # x0 = 10 and x0 = 20 cannot both hold; the solver should still
        # return a best-effort solution and flag it as not exactly feasible.
        model = LPModel(name="conflict", num_variables=1)
        model.add_constraint([0], 10)
        model.add_constraint([0], 20)
        solution = LPSolver(prefer_integer=False).solve(model)
        assert not solution.feasible
        assert solution.max_violation >= 5.0

    def test_constraint_validation(self):
        model = LPModel(name="m", num_variables=2)
        with pytest.raises(LPError):
            model.add_constraint([5], 1)
        with pytest.raises(LPError):
            model.add_constraint([0], -1)
        with pytest.raises(LPError):
            model.add_constraint([0, 1], 1, coefficients=[1.0])

    def test_matrix_cache_invalidated_by_new_constraints(self):
        model = LPModel(name="cached", num_variables=2)
        model.add_constraint([0], 5)
        a1, b1 = model.matrix()
        assert model.matrix()[0] is a1  # cached object returned
        model.add_constraint([1], 7)
        a2, b2 = model.matrix()
        assert a2.shape == (2, 2)
        assert b2.tolist() == [5.0, 7.0]


class TestSolverFallbackChain:
    """The documented escalation: exact MILP first, continuous + L1 slack
    when the model is too large, honest violation reporting when no exact
    solution exists, and a hard error only in strict mode."""

    def _person_model(self, person_task):
        return formulate_view_lp(person_task).model

    def test_milp_used_within_size_limit(self, person_task):
        solution = LPSolver().solve(self._person_model(person_task))
        assert solution.method == "milp"
        assert solution.max_violation == 0.0

    def test_size_limit_triggers_continuous_l1_path(self, person_task):
        model = self._person_model(person_task)
        solution = LPSolver(milp_variable_limit=model.num_variables - 1).solve(model)
        assert solution.method == "linprog+l1"
        # the relaxation is integral here, so rounding loses nothing
        assert solution.max_violation == 0.0

    def test_decomposition_recovers_milp_below_component_limit(self):
        # The whole model exceeds the MILP size limit, but each connected
        # component fits, so the parallel solver keeps the exact integral
        # path where the serial solver has to fall back to the continuous one.
        model = LPModel(name="blocks", num_variables=4)
        model.add_constraint([0, 1], 10)
        model.add_constraint([2, 3], 7)
        serial = LPSolver(milp_variable_limit=3).solve(model)
        assert serial.method == "linprog+l1"
        parallel = ParallelLPSolver(workers=2, milp_variable_limit=3).solve(model)
        assert "milp" in parallel.method
        assert parallel.max_violation == 0.0

    def test_violation_reported_not_dropped_on_rounded_solutions(self):
        # sum of two variables = 7 with equal split forced by a consistency
        # row is integrally infeasible only under conflicting rhs; use
        # directly conflicting CCs to force non-zero slack.
        model = LPModel(name="conflict", num_variables=2)
        model.add_constraint([0, 1], 7)
        model.add_constraint([0, 1], 9)
        solution = LPSolver(prefer_integer=False).solve(model)
        assert not solution.feasible
        assert solution.max_violation >= 1.0  # surfaced, not silently dropped

    def test_infeasible_cc_set_raises_in_strict_mode(self):
        model = LPModel(name="conflict", num_variables=2)
        model.add_constraint([0, 1], 7)
        model.add_constraint([0, 1], 9)
        with pytest.raises(InfeasibleLPError):
            ParallelLPSolver(strict=True).solve(model)

    def test_exabyte_scale_rhs_still_solved(self):
        # Section 7.4 scales CCs to ~1e15 tuples; the continuous path must
        # return a near-exact point (rescuing HiGHS via rhs normalisation if
        # needed) instead of giving up.
        model = LPModel(name="exabyte", num_variables=3)
        model.add_constraint([0, 1], 4 * 10**14)
        model.add_constraint([1, 2], 3 * 10**14)
        solution = LPSolver(prefer_integer=False).solve(model)
        assert solution.max_violation <= 10  # tuples, out of 4e14

    def test_malformed_model_raises_infeasible_error(self):
        # NaN right-hand side makes even the slack LP unsolvable, which is
        # the "malformed model" branch of the continuous path.
        model = LPModel(name="nan", num_variables=1)
        model.add_constraint([0], 1)
        model.constraints[0].rhs = float("nan")  # type: ignore[assignment]
        model._matrix_cache = None
        with pytest.raises(InfeasibleLPError):
            LPSolver(prefer_integer=False).solve(model)
