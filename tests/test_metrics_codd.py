"""Tests for the metrics helpers, the CODD metadata module and the
anonymizer."""

from __future__ import annotations

import pytest

from repro.codd.anonymizer import Anonymizer
from repro.codd.metadata import capture_metadata
from repro.codd.scaling import (
    database_bytes,
    bytes_per_row,
    scale_constraints,
    scale_factor_for_bytes,
)
from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.metrics.costmodel import (
    ThroughputModel,
    format_duration,
    materialization_table,
    rows_for_target_bytes,
)
from repro.metrics.integrity import compare_extra_tuples
from repro.metrics.lpsize import compare_lp_sizes
from repro.metrics.similarity import ConstraintResult, SimilarityReport
from repro.predicates.dnf import DNFPredicate, col


class TestSimilarityReport:
    def _report(self):
        ccs = [
            CardinalityConstraint(relation="r", predicate=col("a") >= 1, cardinality=100),
            CardinalityConstraint(relation="r", predicate=col("a") >= 2, cardinality=50),
            CardinalityConstraint(relation="r", predicate=col("a") >= 3, cardinality=0),
        ]
        return SimilarityReport(results=[
            ConstraintResult(constraint=ccs[0], expected=100, actual=100),
            ConstraintResult(constraint=ccs[1], expected=50, actual=55),
            ConstraintResult(constraint=ccs[2], expected=0, actual=0),
        ])

    def test_error_statistics(self):
        report = self._report()
        assert report.fraction_exact() == pytest.approx(2 / 3)
        assert report.fraction_within(0.1) == 1.0
        assert report.max_error() == pytest.approx(0.1)
        assert report.fraction_negative() == 0.0
        curve = report.error_curve([0.0, 0.05, 0.2])
        assert curve[0][1] == pytest.approx(100 * 2 / 3)
        assert curve[-1][1] == 100.0

    def test_zero_expected_with_rows_counts_as_error(self):
        cc = CardinalityConstraint(relation="r", predicate=col("a") >= 9, cardinality=0)
        result = ConstraintResult(constraint=cc, expected=0, actual=7)
        assert result.relative_error == 7.0


class TestLPSizeAndIntegrityComparisons:
    def test_compare_lp_sizes_region_never_larger(self, toy_schema):
        ccs = ConstraintSet([
            CardinalityConstraint(relation="R", cardinality=100,
                                  predicate=(col("A") >= 10).conjoin(col("C") >= 2)),
            CardinalityConstraint(relation="R", cardinality=80_000,
                                  predicate=DNFPredicate.true()),
        ])
        comparison = compare_lp_sizes(toy_schema, ccs)
        for relation, region, grid, reduction in comparison.rows():
            assert region <= grid
            assert reduction >= 1.0
        assert comparison.total("grid") >= comparison.total("region")

    def test_integrity_comparison(self):
        comparison = compare_extra_tuples({"a": 5, "b": 0}, {"a": 50, "b": 3})
        assert comparison.relations() == ["a", "b"]
        assert comparison.totals() == (5, 53)
        rows = dict((name, (h, d)) for name, h, d in comparison.rows())
        assert rows["a"] == (5, 50)


class TestCostModel:
    def test_throughput_prediction(self):
        model = ThroughputModel(measured_rows=1000, measured_seconds=2.0)
        assert model.rows_per_second == 500
        assert model.predict_seconds(5000) == pytest.approx(10.0)

    def test_materialization_table_shape(self, toy_schema):
        hydra = ThroughputModel(measured_rows=10_000, measured_seconds=1.0)
        datasynth = ThroughputModel(measured_rows=10_000, measured_seconds=50.0)
        counts = {rel.name: rel.row_count for rel in toy_schema.relations}
        table = materialization_table(toy_schema, counts, hydra, datasynth,
                                      target_gigabytes=(10, 100))
        assert len(table) == 2
        assert table[1]["total_rows"] > table[0]["total_rows"]
        assert table[0]["datasynth_seconds"] > table[0]["hydra_seconds"]

    def test_rows_for_target_bytes_scales_linearly(self, toy_schema):
        counts = {rel.name: rel.row_count for rel in toy_schema.relations}
        ten = rows_for_target_bytes(toy_schema, 10 * 10**9, counts)
        hundred = rows_for_target_bytes(toy_schema, 100 * 10**9, counts)
        assert hundred == pytest.approx(10 * ten, rel=0.01)

    def test_format_duration(self):
        assert format_duration(30).endswith("sec")
        assert format_duration(600).endswith("min")
        assert format_duration(7200 * 3).endswith("hours")
        assert format_duration(3600 * 24 * 5).endswith("days")
        assert format_duration(3600 * 24 * 30).endswith("weeks")


class TestAnonymizer:
    def test_name_masking_roundtrip(self):
        anonymizer = Anonymizer()
        masked = anonymizer.mask_name("customer_address")
        assert masked != "customer_address"
        assert anonymizer.mask_name("customer_address") == masked
        assert anonymizer.unmask_name(masked) == "customer_address"

    def test_value_encoding(self):
        anonymizer = Anonymizer()
        code = anonymizer.encode("i_color", "maroon")
        assert anonymizer.encode("i_color", "maroon") == code
        assert anonymizer.decode("i_color", code) == "maroon"
        # integers pass through unchanged
        assert anonymizer.encode("i_size", 5) == 5
        # per-attribute scoping: same string, independent codes
        other = anonymizer.encode("ca_state", "maroon")
        assert anonymizer.decode("ca_state", other) == "maroon"
        assert anonymizer.encode_many("i_color", ["maroon", "teal"]) == [code, code + 1]


class TestCoddMetadataAndScaling:
    def test_capture_and_scale_metadata(self, toy_database):
        catalog = capture_metadata(toy_database)
        assert catalog.row_counts()["R"] == 80_000
        stats = catalog.relations["S"].attributes["A"]
        assert 20 <= stats.minimum <= stats.maximum < 100
        scaled = catalog.scaled(1000.0)
        assert scaled.row_counts()["R"] == 80_000_000
        assert scaled.total_bytes() > catalog.total_bytes()

    def test_scale_factor_and_constraint_scaling(self, toy_schema):
        target = 10**12
        factor = scale_factor_for_bytes(toy_schema, target)
        assert database_bytes(toy_schema) * factor == pytest.approx(target)
        assert bytes_per_row(toy_schema, "R") == 24
        ccs = ConstraintSet([
            CardinalityConstraint(relation="R", predicate=DNFPredicate.true(),
                                  cardinality=80_000),
        ])
        scaled = scale_constraints(ccs, 100.0, name="scaled")
        assert scaled[0].cardinality == 8_000_000
        assert scaled.name == "scaled"
