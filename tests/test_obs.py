"""Tier-1 tests of the unified observability layer (``repro.obs``).

Covers the metric primitives (counter exactness under threads, histogram
quantile error bounds via hypothesis, Prometheus round-trip), request
tracing (parent/child across the service's worker pool, JSONL export and
tree reconstruction), structured logging (caplog events, JSON handler,
trace correlation), the registry-backed ``stats()``/``service_stats()``
views (per-tenant latency quantiles) and the byte-compatible
``TimingLog`` facade.
"""

from __future__ import annotations

import io
import json
import logging
import math
import re
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import RegenConfig
from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.errors import ConfigError
from repro.metrics.timing import TimingLog
from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import QUANTILE_RELATIVE_ERROR, MetricsRegistry
from repro.obs.trace import build_tree, get_tracer, parse_jsonl, span
from repro.predicates.dnf import DNFPredicate, col
from repro.service.service import RegenerationService


def toy_ccs(name: str = "obs-ccs", r_rows: int = 80_000) -> ConstraintSet:
    """A small, fast constraint set over the Figure 1 toy schema."""
    ccs = ConstraintSet(name=name)
    ccs.add(CardinalityConstraint("S", col("A").between(20, 60), 400))
    ccs.add(CardinalityConstraint("S", DNFPredicate.true(), 700))
    ccs.add(CardinalityConstraint("T", col("C") == 2, 900))
    ccs.add(CardinalityConstraint("T", DNFPredicate.true(), 1500))
    ccs.add(CardinalityConstraint("R", DNFPredicate.true(), r_rows))
    return ccs


@pytest.fixture
def tracer():
    """The process tracer, cleared and restored around each test."""
    tracer = get_tracer()
    previous = tracer.sample
    tracer.clear()
    yield tracer
    tracer.configure(sample=previous)
    tracer.clear()


@pytest.fixture
def log_stream():
    """A JSON log handler writing into a StringIO, detached afterwards."""
    root = logging.getLogger("repro")
    previous_level = root.level
    stream = io.StringIO()
    handler = configure_logging(level=logging.DEBUG, log_format="json",
                                stream=stream)
    yield stream
    root.removeHandler(handler)
    root.setLevel(previous_level)


# ---------------------------------------------------------------------- #
# metric primitives
# ---------------------------------------------------------------------- #
class TestMetricsPrimitives:
    def test_counter_exact_under_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "threaded counter")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(10_000)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 80_000

    def test_labeled_counter_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_test_labeled_total", "labeled",
                                  labelnames=("tenant",))
        family.labels(tenant="a").inc(3)
        family.labels(tenant="b").inc(5)
        assert family.labels(tenant="a").value() == 3
        assert family.labels(tenant="b").value() == 5
        assert sum(child.value() for child in family.children()) == 8

    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_test_total", "disabled")
        histogram = registry.histogram("repro_test_seconds", "disabled")
        counter.inc(7)
        histogram.observe(0.5)
        assert counter.value() == 0
        assert histogram.summary()["count"] == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=1e-5, max_value=1e3),
                    min_size=1, max_size=200),
           st.sampled_from([0.5, 0.9, 0.95, 0.99]))
    def test_quantile_estimate_within_one_bucket_ratio(self, values, q):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_test_seconds", "quantiles")
        for value in values:
            histogram.observe(value)
        estimate = histogram.quantile(q)
        ranked = sorted(values)
        exact = ranked[max(0, math.ceil(q * len(ranked)) - 1)]
        tolerance = QUANTILE_RELATIVE_ERROR * 1.0001
        assert exact / tolerance <= estimate <= exact * tolerance

    def test_quantile_of_empty_histogram_is_nan(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_test_seconds", "empty")
        assert math.isnan(histogram.quantile(0.5))

    def test_gauge_set_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_gauge", "peak")
        gauge.set_max(4)
        gauge.set_max(2)
        assert gauge.value() == 4


PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)


def parse_prometheus(text: str):
    """Parse exposition text into ``{(name, labels_str): float}``; raises on
    any malformed line — the round-trip assertion."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = PROM_LINE.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        value = float(match.group("value"))
        series[(match.group("name"), match.group("labels") or "")] = value
    return series


class TestPrometheusRoundTrip:
    def test_export_parses_and_reconstructs(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "c").inc(3)
        registry.gauge("repro_test_gauge", "g",
                       labelnames=("kind",)).labels(kind="x").set(1.5)
        histogram = registry.histogram("repro_test_seconds", "h")
        observations = [0.001, 0.01, 0.01, 0.1, 2.0]
        for value in observations:
            histogram.observe(value)

        series = parse_prometheus(registry.to_prometheus())

        assert series[("repro_test_total", "")] == 3.0
        assert series[("repro_test_gauge", 'kind="x"')] == 1.5
        assert series[("repro_test_seconds_count", "")] == len(observations)
        assert series[("repro_test_seconds_sum", "")] == pytest.approx(
            sum(observations))
        buckets = sorted(
            ((labels, value) for (name, labels), value in series.items()
             if name == "repro_test_seconds_bucket"),
            key=lambda item: (math.inf if "+Inf" in item[0]
                              else float(item[0].split('"')[1])),
        )
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == len(observations)  # +Inf sees everything

    def test_json_export_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "c").inc(2)
        dump = json.loads(registry.to_json())
        assert dump["repro_test_total"]["kind"] == "counter"
        assert dump["repro_test_total"]["series"][0]["value"] == 2.0


# ---------------------------------------------------------------------- #
# tracing
# ---------------------------------------------------------------------- #
class TestTracing:
    def test_nested_spans_share_a_trace(self, tracer):
        tracer.configure(sample=1.0)
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        records = tracer.spans()
        assert [record["name"] for record in records] == ["inner", "outer"]

    def test_unsampled_tracer_records_nothing(self, tracer):
        tracer.configure(sample=0.0)
        with span("invisible"):
            pass
        assert tracer.spans() == []

    def test_error_spans_carry_status_and_message(self, tracer):
        tracer.configure(sample=1.0)
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record["status"] == "error"
        assert "ValueError: boom" in record["error"]

    def test_service_build_parents_under_submit_across_worker_pool(
            self, toy_schema, tracer, tmp_path):
        tracer.configure(sample=1.0)
        config = RegenConfig(workers=1, trace_sample=1.0)
        with RegenerationService(toy_schema, store=str(tmp_path / "store"),
                                 config=config, max_workers=1) as service:
            ticket = service.submit(toy_ccs())
            summary = ticket.result()
            relation = sorted(summary.relations)[0]
            for _ in service.stream(ticket.fingerprint, relation,
                                    batch_size=512):
                pass

        records = parse_jsonl(tracer.to_jsonl())
        by_name = {record["name"]: record for record in records}
        submit = by_name["service.submit"]
        build = by_name["service.build"]
        # The build ran on a pool thread yet joins the submitter's trace.
        assert build["trace_id"] == submit["trace_id"]
        assert build["parent_id"] == submit["span_id"]
        backend = by_name["backend.build"]
        assert backend["parent_id"] == build["span_id"]
        assert by_name["lp.solve_many"]["trace_id"] == submit["trace_id"]

        tree = build_tree(records)
        roots = {node["name"] for node in tree}
        assert "service.submit" in roots
        submit_node = next(n for n in tree if n["name"] == "service.submit")

        def names(node):
            out = {node["name"]}
            for child in node.get("children", ()):
                out |= names(child)
            return out

        assert {"service.build", "backend.build",
                "lp.solve_many"} <= names(submit_node)
        # The streaming cursor finished its own (non-current) span too.
        assert "tuplegen.stream_range" in {r["name"] for r in records}

    def test_jsonl_export_file_round_trips(self, toy_schema, tracer,
                                           tmp_path):
        tracer.configure(sample=1.0)
        with span("exported", key="value"):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export(path) == 1
        (record,) = parse_jsonl(path.read_text())
        assert record["name"] == "exported"
        assert record["attributes"] == {"key": "value"}


# ---------------------------------------------------------------------- #
# service telemetry views
# ---------------------------------------------------------------------- #
class TestServiceTelemetry:
    def test_concurrent_tenants_populate_latency_quantiles(
            self, toy_schema, tmp_path):
        config = RegenConfig(workers=1)
        with RegenerationService(toy_schema, store=str(tmp_path / "store"),
                                 config=config, max_workers=2) as service:
            def run(tenant, r_rows):
                ticket = service.submit(toy_ccs(r_rows=r_rows), tenant=tenant)
                summary = ticket.result()
                relation = sorted(summary.relations)[0]
                for _ in service.stream(ticket.fingerprint, relation,
                                        batch_size=512, tenant=tenant):
                    pass

            threads = [
                threading.Thread(target=run, args=("acme", 60_000)),
                threading.Thread(target=run, args=("globex", 70_000)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            stats = service.service_stats()
            assert {row.tenant for row in stats.tenants} >= {"acme", "globex"}
            for name in ("acme", "globex"):
                row = stats.tenant(name)
                assert row.admitted == 1 and row.completed == 1
                assert row.failed == 0
                assert row.e2e_p50 > 0.0
                assert row.e2e_p99 >= row.e2e_p50
                assert row.ttfb_p50 > 0.0

            flat = service.stats()
            assert flat["requests"] == 2
            assert flat["pipeline_runs"] == 2

            # The same numbers flow out of the registry exports.
            series = parse_prometheus(service.registry.to_prometheus())
            assert series[("repro_service_requests_total", "")] == 2.0
            assert series[("repro_service_request_seconds_count",
                           'tenant="acme"')] == 1.0

    def test_disabled_observability_keeps_serving(self, toy_schema, tmp_path):
        config = RegenConfig(workers=1, obs_enabled=False)
        with RegenerationService(toy_schema, store=str(tmp_path / "store"),
                                 config=config, max_workers=1) as service:
            summary = service.submit(toy_ccs()).result()
            assert summary.total_rows() > 0
            stats = service.stats()
            assert stats["requests"] == 0  # documented: updates are no-ops
            assert stats["queue_depth"] == 0


# ---------------------------------------------------------------------- #
# logging
# ---------------------------------------------------------------------- #
class TestLogging:
    def test_service_lifecycle_emits_repro_log_events(
            self, toy_schema, tmp_path, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            config = RegenConfig(workers=1)
            with RegenerationService(toy_schema,
                                     store=str(tmp_path / "store"),
                                     config=config,
                                     max_workers=1) as service:
                service.submit(toy_ccs()).result()
        names = {record.name for record in caplog.records}
        assert any(name.startswith("repro.service") for name in names)
        assert all(name == "repro" or name.startswith("repro.")
                   for name in names)

    def test_json_handler_emits_parseable_records(self, log_stream):
        get_logger("obs.test").info("hello %s", "world", extra={"answer": 42})
        (line,) = log_stream.getvalue().splitlines()
        payload = json.loads(line)
        assert payload["message"] == "hello world"
        assert payload["logger"] == "repro.obs.test"
        assert payload["level"] == "INFO"
        assert payload["answer"] == 42

    def test_json_records_are_trace_correlated(self, log_stream, tracer):
        tracer.configure(sample=1.0)
        with span("logging") as current:
            get_logger("obs.test").info("inside")
        payload = json.loads(log_stream.getvalue().splitlines()[0])
        assert payload["trace_id"] == current.trace_id
        assert payload["span_id"] == current.span_id


# ---------------------------------------------------------------------- #
# config knobs
# ---------------------------------------------------------------------- #
class TestConfigKnobs:
    def test_trace_sample_validated(self):
        with pytest.raises(ConfigError):
            RegenConfig(trace_sample=1.5)
        with pytest.raises(ConfigError):
            RegenConfig(trace_sample=-0.1)

    def test_log_format_validated(self):
        with pytest.raises(ConfigError):
            RegenConfig(log_format="xml")

    def test_obs_knobs_do_not_namespace_fingerprints(self, toy_schema):
        from repro.api.session import Session

        plain = Session(toy_schema, config=RegenConfig())
        tuned = Session(toy_schema,
                        config=RegenConfig(obs_enabled=False))
        ccs = toy_ccs()
        assert plain.fingerprint(ccs) == tuned.fingerprint(ccs)


# ---------------------------------------------------------------------- #
# TimingLog facade compatibility
# ---------------------------------------------------------------------- #
class TestTimingLogFacade:
    def test_legacy_surface_is_preserved(self):
        log = TimingLog()
        log.record("solve", 2.0)
        log.record("solve", 1.0)
        with log.time("stitch"):
            pass
        assert set(log.entries) == {"solve", "stitch"}
        assert log.entries["solve"] == pytest.approx(3.0)
        assert log.total() == pytest.approx(3.0 + log.entries["stitch"])
        assert log == TimingLog(entries=dict(log.entries))
        assert "solve" in repr(log)

    def test_quantiles_ride_along(self):
        log = TimingLog()
        for seconds in (0.01, 0.01, 0.01, 10.0):
            log.record("solve", seconds)
        p50 = log.quantile("solve", 0.5)
        assert p50 == pytest.approx(0.01, rel=QUANTILE_RELATIVE_ERROR)
        assert log.quantile("solve", 1.0) == pytest.approx(10.0)

    def test_solver_timings_share_the_service_registry(self, toy_schema,
                                                       tmp_path):
        config = RegenConfig(workers=1)
        with RegenerationService(toy_schema, store=str(tmp_path / "store"),
                                 config=config, max_workers=1) as service:
            service.submit(toy_ccs()).result()
            snapshot = service.registry.snapshot()
        phases = [key for key in snapshot
                  if key.startswith("repro_timing_seconds")]
        assert phases, "solver TimingLog not re-homed onto the service registry"
