"""Tier-1 observability drift checks.

Runs the same checks as the CI ``docs`` job (``tools/check_obs.py``): no
bare ``print()`` in library code, every literal logger name inside the
``repro.*`` namespace, and the metric names registered in the source tree
matching the ``docs/OBSERVABILITY.md`` catalogue in both directions — plus
unit coverage proving the lint actually detects each violation class.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_obs", REPO_ROOT / "tools" / "check_obs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_is_clean():
    checker = _load_checker()
    findings = checker.run(REPO_ROOT / "src" / "repro",
                           REPO_ROOT / "docs" / "OBSERVABILITY.md")
    assert findings == []


def test_detects_bare_print(tmp_path):
    checker = _load_checker()
    bad = tmp_path / "src" / "repro" / "module.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('print("hello")\n')
    _, findings = checker.check_sources(bad.parent)
    assert any("bare print()" in f for f in findings)


def test_cli_modules_may_print(tmp_path):
    checker = _load_checker()
    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    (root / "cli.py").write_text('print("ok")\n')
    (root / "__main__.py").write_text('print("ok")\n')
    _, findings = checker.check_sources(root)
    assert findings == []


def test_detects_foreign_logger_namespace(tmp_path):
    checker = _load_checker()
    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    (root / "module.py").write_text(
        'import logging\n'
        'ok = logging.getLogger("repro.thing")\n'
        'bad = logging.getLogger("mylib.thing")\n'
    )
    _, findings = checker.check_sources(root)
    assert len(findings) == 1
    assert "'mylib.thing'" in findings[0]


def test_detects_aliased_metric_name(tmp_path):
    checker = _load_checker()
    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    (root / "module.py").write_text(
        'NAME = "repro_thing_total"\n'
        'counter = registry.counter(NAME, "help")\n'
    )
    _, findings = checker.check_sources(root)
    assert any("inline" in f for f in findings)


def test_catalogue_checked_both_directions(tmp_path):
    checker = _load_checker()
    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    (root / "module.py").write_text(
        'a = registry.counter("repro_registered_total", "help")\n'
        'b = registry.gauge("repro_documented_gauge", "help")\n'
    )
    doc = tmp_path / "OBSERVABILITY.md"
    doc.write_text(
        "| metric | kind |\n"
        "| --- | --- |\n"
        "| `repro_documented_gauge` | gauge |\n"
        "| `repro_phantom_total` | counter |\n"
    )
    findings = checker.run(root, doc)
    assert any("repro_registered_total" in f and "missing from" in f
               for f in findings)
    assert any("repro_phantom_total" in f and "registered nowhere" in f
               for f in findings)
    assert not any("repro_documented_gauge" in f for f in findings)


def test_catalogue_table_parser_matches_real_doc():
    checker = _load_checker()
    documented = checker.catalogue_names(
        REPO_ROOT / "docs" / "OBSERVABILITY.md")
    # Spot-check one metric of each instrumented layer.
    for name in ("repro_timing_seconds", "repro_lp_solve_seconds",
                 "repro_store_bytes", "repro_service_requests_total"):
        assert name in documented
