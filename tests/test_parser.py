"""Tests for the AQP-to-CC parser (Figure 1(c) -> Figure 1(d))."""

from __future__ import annotations

import pytest

from repro.constraints.parser import (
    constraints_from_plan,
    constraints_from_plans,
    relation_size_constraints,
)
from repro.engine.executor import Executor
from repro.predicates.dnf import col
from repro.workload.query import Query, Workload


@pytest.fixture
def figure1_plan(toy_database):
    query = Query(
        query_id="fig1",
        root="R",
        relations=("R", "S", "T"),
        filters={"S": col("A").between(20, 60), "T": col("C").between(2, 3)},
    )
    return Executor(toy_database).execute(query).plan


class TestConstraintsFromPlan:
    def test_number_and_kinds_of_constraints(self, figure1_plan):
        ccs = constraints_from_plan(figure1_plan)
        # two filters + two joins, as in Figure 1(d) (sizes are added separately)
        assert len(ccs) == 4
        kinds = sorted((cc.relation, len(cc.joined_relations), cc.cardinality) for cc in ccs)
        assert ("R", 2, 50_000) in kinds
        assert ("R", 3, 30_000) in kinds
        assert ("S", 1, 400) in kinds
        assert ("T", 1, 900) in kinds

    def test_join_constraint_predicates_accumulate_filters(self, figure1_plan):
        ccs = constraints_from_plan(figure1_plan)
        final = next(cc for cc in ccs if len(cc.joined_relations) == 3)
        assert set(final.predicate.attributes) == {"A", "C"}
        assert final.relation == "R"
        assert final.query_id == "fig1"

    def test_filter_constraint_rooted_at_dimension(self, figure1_plan):
        ccs = constraints_from_plan(figure1_plan)
        s_cc = next(cc for cc in ccs if cc.relation == "S")
        assert s_cc.joined_relations == ("S",)
        assert s_cc.predicate.attributes == ("A",)
        assert not s_cc.is_join_constraint


class TestRelationSizeConstraints:
    def test_sizes_from_schema(self, toy_schema):
        ccs = relation_size_constraints(toy_schema)
        by_relation = {cc.relation: cc.cardinality for cc in ccs}
        assert by_relation == {"R": 80_000, "S": 700, "T": 1_500}
        assert all(cc.is_size_constraint for cc in ccs)

    def test_row_count_override(self, toy_schema):
        ccs = relation_size_constraints(toy_schema, relations=["S"], row_counts={"S": 123})
        assert len(ccs) == 1
        assert ccs[0].cardinality == 123


class TestConstraintsFromPlans:
    def test_workload_level_extraction(self, toy_database, figure1_plan):
        ccs = constraints_from_plans([figure1_plan], toy_database.schema,
                                     row_counts=toy_database.row_counts())
        # 4 plan constraints + 3 size constraints
        assert len(ccs) == 7
        assert set(ccs.relations()) == {"R", "S", "T"}

    def test_deduplication(self, toy_database, figure1_plan):
        ccs = constraints_from_plans([figure1_plan, figure1_plan], toy_database.schema)
        dedup = constraints_from_plans([figure1_plan], toy_database.schema)
        assert len(ccs) == len(dedup)

    def test_no_sizes(self, toy_database, figure1_plan):
        ccs = constraints_from_plans([figure1_plan], toy_database.schema, include_sizes=False)
        assert all(not cc.is_size_constraint for cc in ccs)

    def test_constraint_set_statistics(self, toy_database, figure1_plan):
        ccs = constraints_from_plans([figure1_plan], toy_database.schema,
                                     row_counts=toy_database.row_counts())
        stats = ccs.summary()
        assert stats["count"] == 7
        assert stats["max"] == 80_000
        histogram = ccs.cardinality_histogram()
        assert sum(histogram["counts"]) == 7
        scaled = ccs.scaled(10.0)
        assert max(cc.cardinality for cc in scaled) == 800_000
