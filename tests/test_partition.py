"""Tests for region partitioning (Algorithms 1/2), grid partitioning and the
worked Person example of Figures 3/4."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LPTooLargeError, PartitionError
from repro.partition.box import Box, conjunct_boxes, domain_box
from repro.partition.grid import attribute_cut_points, grid_cell_count, grid_partition
from repro.partition.region import (
    optimal_partition,
    optimal_partition_paper,
    valid_partition,
)
from repro.predicates.conjunct import Conjunct
from repro.predicates.dnf import DNFPredicate
from repro.predicates.interval import Interval, IntervalSet
from repro.views.preprocess import ViewConstraint


# ---------------------------------------------------------------------- #
# Box primitives
# ---------------------------------------------------------------------- #
class TestBox:
    def test_volume_and_corner(self):
        box = Box({"a": Interval(0, 4), "b": Interval(10, 12)})
        assert box.volume() == 8
        assert box.corner() == {"a": 0, "b": 10}
        assert box.contains_point({"a": 3, "b": 11})
        assert not box.contains_point({"a": 4, "b": 11})

    def test_intersect_and_subtract_partition_volume(self):
        outer = Box({"a": Interval(0, 10), "b": Interval(0, 10)})
        inner = Box({"a": Interval(2, 5), "b": Interval(3, 7)})
        cap = outer.intersect(inner)
        pieces = outer.subtract(cap)
        assert cap.volume() + sum(p.volume() for p in pieces) == outer.volume()
        # pieces are pairwise disjoint
        for i, p in enumerate(pieces):
            for q in pieces[i + 1:]:
                assert p.intersect(q) is None

    def test_subtract_disjoint_returns_self(self):
        a = Box({"x": Interval(0, 5)})
        b = Box({"x": Interval(7, 9)})
        assert a.subtract(b) == [a]

    def test_split_along(self):
        box = Box({"a": Interval(0, 10), "b": Interval(0, 2)})
        pieces = box.split_along("a", [3, 7])
        assert len(pieces) == 3
        assert sum(p.volume() for p in pieces) == box.volume()

    def test_satisfies_predicate(self):
        box = Box({"a": Interval(0, 5), "b": Interval(10, 20)})
        pred = DNFPredicate.of(Conjunct({"a": IntervalSet.single(0, 10)}))
        assert box.satisfies_predicate(pred)
        assert box.satisfies_predicate(DNFPredicate.true())
        pred2 = DNFPredicate.of(Conjunct({"a": IntervalSet.single(3, 10)}))
        assert not box.satisfies_predicate(pred2)

    def test_conjunct_boxes_expands_in_lists(self):
        universe = Box({"a": Interval(0, 100), "b": Interval(0, 100)})
        conjunct = Conjunct({
            "a": IntervalSet([Interval(0, 5), Interval(10, 15)]),
            "b": IntervalSet.single(0, 50),
        })
        boxes = conjunct_boxes(conjunct, universe)
        assert len(boxes) == 2
        assert sum(b.volume() for b in boxes) == 10 * 50

    def test_conjunct_boxes_empty_when_outside_domain(self):
        universe = Box({"a": Interval(0, 10)})
        conjunct = Conjunct({"a": IntervalSet.single(50, 60)})
        assert conjunct_boxes(conjunct, universe) == []


# ---------------------------------------------------------------------- #
# The Person example (Figures 3 and 4)
# ---------------------------------------------------------------------- #
class TestPersonExample:
    def test_region_partitioning_yields_four_regions(self, person_domains, person_constraints):
        regions = optimal_partition(("age", "salary"), person_domains, person_constraints)
        assert len(regions) == 4

    def test_grid_partitioning_yields_sixteen_cells(self, person_domains, person_constraints):
        count = grid_cell_count(("age", "salary"), person_domains, person_constraints)
        assert count == 16
        cells = grid_partition(("age", "salary"), person_domains, person_constraints)
        assert len(cells) == 16

    def test_labels_match_figure_4b(self, person_domains, person_constraints):
        regions = optimal_partition(("age", "salary"), person_domains, person_constraints)
        labels = {frozenset(r.label) for r in regions}
        # constraint indices: 0 = C1 (y1+y2), 1 = C2 (y2+y3), 2 = total
        assert labels == {
            frozenset({0, 2}),        # y1: inside C1 only
            frozenset({0, 1, 2}),     # y2: inside both
            frozenset({1, 2}),        # y3: inside C2 only
            frozenset({2}),           # y4: the rest
        }

    def test_paper_algorithm_agrees_with_production_implementation(
            self, person_domains, person_constraints):
        fast = optimal_partition(("age", "salary"), person_domains, person_constraints)
        paper = optimal_partition_paper(("age", "salary"), person_domains, person_constraints)
        assert {r.label for r in fast} == {r.label for r in paper}
        fast_volumes = {r.label: r.volume() for r in fast}
        paper_volumes = {r.label: r.volume() for r in paper}
        assert fast_volumes == paper_volumes

    def test_regions_cover_the_domain_exactly(self, person_domains, person_constraints):
        regions = optimal_partition(("age", "salary"), person_domains, person_constraints)
        total = sum(r.volume() for r in regions)
        assert total == 100 * 100_000


# ---------------------------------------------------------------------- #
# Valid partition (Algorithm 2)
# ---------------------------------------------------------------------- #
class TestValidPartition:
    def test_blocks_do_not_split_any_subconstraint(self):
        domains = {"a": Interval(0, 100), "b": Interval(0, 100)}
        sub_constraints = [
            Conjunct({"a": IntervalSet.single(0, 40), "b": IntervalSet.single(30, 70)}),
            Conjunct({"a": IntervalSet.single(20, 60)}),
        ]
        blocks = valid_partition(("a", "b"), domains, sub_constraints)
        assert sum(b.volume() for b in blocks) == 100 * 100
        for block in blocks:
            for conjunct in sub_constraints:
                # no sub-constraint may split a block: either every point
                # satisfies it or none does
                assert block.satisfies_conjunct(conjunct) or not block.overlaps_conjunct(conjunct)

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(PartitionError):
            optimal_partition((), {}, [])


# ---------------------------------------------------------------------- #
# Grid partitioning
# ---------------------------------------------------------------------- #
class TestGridPartitioning:
    def test_cut_points_from_constraints(self, person_constraints):
        points = attribute_cut_points("age", person_constraints)
        assert points == [0, 20, 40, 60]

    def test_cell_count_is_product_without_materialisation(self):
        domains = {"a": Interval(0, 1_000_000), "b": Interval(0, 1_000_000)}
        constraints = [
            ViewConstraint(predicate=DNFPredicate.of(Conjunct({
                "a": IntervalSet.point(i * 10), "b": IntervalSet.point(i * 7)
            })), cardinality=1)
            for i in range(100)
        ]
        count = grid_cell_count(("a", "b"), domains, constraints)
        assert count > 10_000  # ~201 x 201
        with pytest.raises(LPTooLargeError):
            grid_partition(("a", "b"), domains, constraints, max_cells=1000)

    def test_grid_cells_partition_domain(self, person_domains, person_constraints):
        cells = grid_partition(("age", "salary"), person_domains, person_constraints)
        assert sum(c.volume() for c in cells) == 100 * 100_000


# ---------------------------------------------------------------------- #
# property-based tests: the two implementations agree and regions are valid
# ---------------------------------------------------------------------- #
@st.composite
def random_constraints(draw):
    num_attrs = draw(st.integers(1, 3))
    attrs = [f"x{i}" for i in range(num_attrs)]
    domains = {a: Interval(0, 20) for a in attrs}
    constraints = []
    for _ in range(draw(st.integers(1, 5))):
        conjuncts = []
        for _ in range(draw(st.integers(1, 2))):
            constrained = draw(st.lists(st.sampled_from(attrs), min_size=1,
                                        max_size=num_attrs, unique=True))
            restriction = {}
            for a in constrained:
                lo = draw(st.integers(0, 18))
                hi = draw(st.integers(lo + 1, 20))
                restriction[a] = IntervalSet.single(lo, hi)
            conjuncts.append(Conjunct(restriction))
        constraints.append(ViewConstraint(predicate=DNFPredicate(conjuncts), cardinality=1))
    constraints.append(ViewConstraint(predicate=DNFPredicate.true(), cardinality=10))
    return attrs, domains, constraints


@given(random_constraints())
@settings(max_examples=60, deadline=None)
def test_optimal_partition_matches_paper_algorithm(data):
    attrs, domains, constraints = data
    fast = optimal_partition(attrs, domains, constraints)
    paper = optimal_partition_paper(attrs, domains, constraints)
    assert {r.label for r in fast} == {r.label for r in paper}
    assert {r.label: r.volume() for r in fast} == {r.label: r.volume() for r in paper}


@given(random_constraints())
@settings(max_examples=60, deadline=None)
def test_optimal_partition_is_a_valid_partition(data):
    attrs, domains, constraints = data
    regions = optimal_partition(attrs, domains, constraints)
    # regions cover the domain exactly once
    total_volume = 1
    for a in attrs:
        total_volume *= domains[a].width
    assert sum(r.volume() for r in regions) == total_volume
    # every box of a region satisfies exactly the constraints in the label
    for region in regions:
        for box in region.boxes:
            for index, constraint in enumerate(constraints):
                satisfied = box.satisfies_predicate(constraint.predicate)
                assert satisfied == (index in region.label)


@given(random_constraints())
@settings(max_examples=40, deadline=None)
def test_region_count_never_exceeds_grid_count(data):
    attrs, domains, constraints = data
    regions = optimal_partition(attrs, domains, constraints)
    grid = grid_cell_count(attrs, domains, constraints)
    assert len(regions) <= max(grid, 1)
