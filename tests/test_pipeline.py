"""End-to-end tests of the Hydra pipeline and the DataSynth baseline."""

from __future__ import annotations

import pytest

from repro.benchdata.tpcds import simple_workload
from repro.codd.scaling import scale_constraints
from repro.datasynth.pipeline import DataSynth, DataSynthConfig
from repro.errors import LPTooLargeError
from repro.hydra.client import extract_constraints
from repro.hydra.pipeline import Hydra, HydraConfig
from repro.metrics.similarity import evaluate_on_database, evaluate_on_summary
from repro.predicates.dnf import col
from repro.tuplegen.generator import materialize_database
from repro.workload.query import Query, Workload


@pytest.fixture
def toy_package(toy_database):
    workload = Workload(name="toy", queries=[
        Query(query_id="fig1", root="R", relations=("R", "S", "T"),
              filters={"S": col("A").between(20, 60), "T": col("C").between(2, 3)}),
        Query(query_id="q2", root="R", relations=("R", "S"),
              filters={"S": col("B") < 25}),
        Query(query_id="q3", root="S", relations=("S",),
              filters={"S": (col("A") >= 50).conjoin(col("B") >= 10)}),
    ])
    return toy_database, extract_constraints(toy_database, workload)


class TestHydraEndToEnd:
    def test_constraints_satisfied_on_materialised_database(self, toy_package):
        toy_db, package = toy_package
        hydra = Hydra(toy_db.schema)
        result = hydra.build_summary(package.constraints)
        synthetic = materialize_database(result.summary, toy_db.schema)
        report = evaluate_on_database(package.constraints, synthetic)
        # the toy scenario has large relations, so the additive integrity
        # error is negligible: everything within 2%.
        assert report.fraction_within(0.02) == 1.0
        assert report.fraction_negative() == 0.0

    def test_summary_evaluation_matches_database_evaluation(self, toy_package):
        toy_db, package = toy_package
        result = Hydra(toy_db.schema).build_summary(package.constraints)
        synthetic = materialize_database(result.summary, toy_db.schema)
        on_db = evaluate_on_database(package.constraints, synthetic)
        on_summary = evaluate_on_summary(package.constraints, result.summary, toy_db.schema)
        for a, b in zip(on_db.results, on_summary.results):
            assert a.actual == b.actual

    def test_summary_size_independent_of_data_scale(self, toy_package):
        """Scaling every cardinality by 1000x must not change the number of
        summary rows — only the counts inside them (Section 7.4)."""
        toy_db, package = toy_package
        hydra = Hydra(toy_db.schema)
        small = hydra.build_summary(package.constraints).summary
        scaled = scale_constraints(package.constraints, 1000.0)
        big = Hydra(toy_db.schema).build_summary(scaled).summary
        for relation in small.relations:
            assert len(big.relation(relation)) <= len(small.relation(relation)) + 2
        assert big.total_rows() >= 999 * small.total_rows() // 1000 * 1000 // 1000
        assert big.nbytes() <= small.nbytes() * 2

    def test_lp_variable_counts_reported(self, toy_package):
        toy_db, package = toy_package
        result = Hydra(toy_db.schema).build_summary(package.constraints)
        assert result.lp_variable_counts["R"] >= 1
        assert result.lp_seconds() >= 0.0
        assert result.summary.timings["total_seconds"] > 0.0

    def test_grid_strategy_ablation(self, toy_package):
        """Running the Hydra pipeline with grid partitioning still satisfies
        the constraints on this small example (it is just far bigger)."""
        toy_db, package = toy_package
        hydra = Hydra(toy_db.schema, HydraConfig(strategy="grid"))
        result = hydra.build_summary(package.constraints)
        region = Hydra(toy_db.schema).build_summary(package.constraints)
        assert sum(result.lp_variable_counts.values()) >= sum(
            region.lp_variable_counts.values()
        )


class TestDataSynthBaseline:
    def test_generates_database_and_respects_sizes(self, toy_package):
        toy_db, package = toy_package
        result = DataSynth(toy_db.schema, DataSynthConfig(seed=3)).generate(package.constraints)
        report = evaluate_on_database(package.constraints, result.database)
        # sampling is noisy but must stay in the right ballpark
        assert report.fraction_within(0.35) >= 0.8
        assert result.database.table("R").num_rows >= 80_000

    def test_lp_variable_counts_at_least_hydra(self, toy_package):
        toy_db, package = toy_package
        ds_counts = DataSynth(toy_db.schema).count_lp_variables(package.constraints)
        hydra_counts = Hydra(toy_db.schema).count_lp_variables(package.constraints)
        for relation, count in hydra_counts.items():
            assert ds_counts[relation] >= count

    def test_grid_blowup_raises(self, small_tpcds_schema, small_tpcds_database):
        from repro.benchdata.tpcds import complex_workload
        workload = complex_workload(small_tpcds_schema, num_queries=40, seed=5)
        package = extract_constraints(small_tpcds_database, workload)
        counts = DataSynth(small_tpcds_schema).count_lp_variables(package.constraints)
        # Pick a ceiling below the largest grid so the formulation must fail,
        # mirroring the solver crash the paper reports for WLc.
        ceiling = max(2, max(counts.values()) // 2)
        baseline = DataSynth(small_tpcds_schema,
                             DataSynthConfig(max_grid_variables=ceiling))
        with pytest.raises(LPTooLargeError):
            baseline.generate(package.constraints)


class TestSmallTpcdsEndToEnd:
    def test_simple_workload_regeneration(self, small_tpcds_schema, small_tpcds_database,
                                          small_tpcds_constraints):
        result = Hydra(small_tpcds_schema).build_summary(small_tpcds_constraints)
        report = evaluate_on_summary(small_tpcds_constraints, result.summary,
                                     small_tpcds_schema)
        # At this miniature scale the dimension tables are tiny, so the
        # additive integrity error is relatively visible; the bulk of the
        # constraints must still be matched closely.
        assert report.fraction_within(0.5) >= 0.75
        assert result.summary.nbytes() < 200_000
