"""Tests for the pipelined (batch-at-a-time) executor.

Covers the PR's acceptance criteria:

* **Mode equivalence** — pipelined and materialized execution produce
  identical result tables and AQP cardinalities over seeded TPC-DS-like and
  JOB-like workloads, at batch sizes 1, 7 and 65536.
* **True laziness** — pipelined execution over a stream-attached
  (dynamically regenerated) database never calls
  ``TupleGenerator.materialize()`` and never caches the fact relation.
* **Single-pass stream contract** — a stream factory that hands back the
  same exhausted iterator twice raises ``EngineError`` instead of silently
  yielding empty data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchdata.datagen import generate_database
from repro.benchdata.job import job_schema, job_workload
from repro.benchdata.tpcds import simple_workload
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.errors import EngineError
from repro.hydra.pipeline import Hydra
from repro.predicates.dnf import col
from repro.tuplegen.generator import TupleGenerator, dynamic_database
from repro.workload.query import Query, Workload

BATCH_SIZES = (1, 7, 65_536)

#: Fact-table row limit per batch size, keeping the per-row Python overhead
#: of the degenerate batch sizes bounded while still spanning many batches.
ROW_LIMITS = {1: 60, 7: 700, 65_536: None}


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def sliced(database: Database, limit):
    """A copy of ``database`` with every table truncated to ``limit`` rows.

    Both executor modes run against the same truncated instance, so the
    equivalence check is unaffected by any dangling foreign keys the
    truncation introduces.
    """
    if limit is None:
        return database
    copy = Database(database.schema, name=f"{database.name}-sliced")
    for relation in database.relations:
        table = database.table(relation)
        copy.attach(relation, Table(
            {c: table.column(c)[:limit] for c in table.column_names},
            name=relation,
        ))
    return copy


def streamed_copy(database: Database, batch_size: int) -> Database:
    """Re-attach every table of ``database`` as a batch stream."""
    copy = Database(database.schema, name=f"{database.name}-streamed")
    for relation in database.relations:
        table = database.table(relation)

        def factory(table: Table = table) -> "iter":
            return (
                table.select(np.arange(len(table)) // batch_size == i)
                for i in range((len(table) + batch_size - 1) // batch_size)
            )

        copy.attach_stream(relation, factory, row_count=table.num_rows)
    return copy


def assert_identical(materialized, pipelined):
    """Result tables and annotated plans of the two modes must be equal."""
    left, right = materialized.table, pipelined.table
    assert left.num_rows == right.num_rows
    assert set(left.column_names) == set(right.column_names)
    for column in left.column_names:
        assert np.array_equal(left.column(column), right.column(column)), column
    assert materialized.plan.operator_cardinalities() == \
        pipelined.plan.operator_cardinalities()
    assert materialized.plan == pipelined.plan


# ---------------------------------------------------------------------- #
# mode equivalence over seeded benchmark workloads
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_modes_identical_on_tpcds_workload(small_tpcds_schema,
                                           small_tpcds_database, batch_size):
    base = sliced(small_tpcds_database, ROW_LIMITS[batch_size])
    streamed = streamed_copy(base, batch_size)
    workload = simple_workload(small_tpcds_schema, num_queries=25, seed=3)
    materializer = Executor(base, mode="materialize")
    pipeliner = Executor(streamed, mode="pipelined")
    for query in workload:
        assert_identical(materializer.execute(query), pipeliner.execute(query))
    assert pipeliner.stats.peak_batch_rows <= batch_size


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_modes_identical_on_job_workload(small_job_schema, batch_size):
    base = sliced(generate_database(small_job_schema, seed=19),
                  ROW_LIMITS[batch_size])
    streamed = streamed_copy(base, batch_size)
    workload = job_workload(small_job_schema, num_queries=20, seed=23)
    materializer = Executor(base, mode="materialize")
    pipeliner = Executor(streamed, mode="pipelined")
    for query in workload:
        assert_identical(materializer.execute(query), pipeliner.execute(query))
    assert pipeliner.stats.peak_batch_rows <= batch_size


def test_count_matches_collected_table(small_tpcds_schema, small_tpcds_database):
    streamed = streamed_copy(small_tpcds_database, 4096)
    workload = simple_workload(small_tpcds_schema, num_queries=10, seed=3)
    for query in workload:
        predicates = [query.filter_for(rel) for rel in query.relations]
        reference = Executor(small_tpcds_database, mode="materialize").execute(query).table
        counts = Executor(streamed, mode="pipelined").count(query, predicates)
        assert counts == [reference.count(p) for p in predicates]


# ---------------------------------------------------------------------- #
# laziness: the fact relation is never materialised in pipelined mode
# ---------------------------------------------------------------------- #
def toy_workload() -> Workload:
    return Workload(name="toy", queries=[
        Query(query_id="q1", root="R", relations=("R", "S", "T"),
              filters={"S": col("A").between(20, 60), "T": col("C").between(2, 3)}),
        Query(query_id="q2", root="R", relations=("R", "S")),
        Query(query_id="q3", root="S", relations=("S",),
              filters={"S": col("A").between(20, 60)}),
    ])


def test_pipelined_never_materializes_fact(toy_schema, monkeypatch):
    from tests.test_service import toy_ccs

    summary = Hydra(toy_schema).build_summary(toy_ccs()).summary

    def forbidden(self):
        raise AssertionError("pipelined execution called materialize()")

    monkeypatch.setattr(TupleGenerator, "materialize", forbidden)
    database = dynamic_database(summary, toy_schema, batch_size=8192)
    executor = Executor(database, mode="pipelined")
    plans = executor.execute_workload(toy_workload())
    # The fact relation was consumed batch-at-a-time and never cached; the
    # dimension build sides were (stream-)materialised, as designed.
    assert database.is_dynamic("R")
    # q2 joins the full fact against an unfiltered dimension: referential
    # consistency guarantees every regenerated fact row survives.
    assert plans[1].output_cardinality() == 80_000
    assert executor.stats.peak_batch_rows <= 8192

    # AQPs equal those of materialized-mode execution of the same workload.
    reference = Executor(dynamic_database(summary, toy_schema), mode="materialize")
    monkeypatch.undo()
    expected = reference.execute_workload(toy_workload())
    assert [p.operator_cardinalities() for p in plans] == \
        [p.operator_cardinalities() for p in expected]


# ---------------------------------------------------------------------- #
# single-pass stream contract
# ---------------------------------------------------------------------- #
class TestScanBatchesContract:
    def _batches(self):
        return iter([Table({"T_pk": np.arange(1, 4), "C": np.array([1, 2, 3])},
                           name="T")])

    def test_same_iterator_factory_rejected(self, toy_schema):
        database = Database(toy_schema)
        one_shot = self._batches()
        database.attach_stream("T", lambda: one_shot)
        assert sum(b.num_rows for b in database.scan_batches("T")) == 3
        with pytest.raises(EngineError, match="same iterator object"):
            database.scan_batches("T")

    def test_fresh_iterator_factory_allows_rescans(self, toy_schema):
        database = Database(toy_schema)
        database.attach_stream("T", self._batches)
        for _ in range(3):
            assert sum(b.num_rows for b in database.scan_batches("T")) == 3

    def test_reattach_resets_one_shot_source(self, toy_schema):
        database = Database(toy_schema)
        one_shot = self._batches()
        database.attach_stream("T", lambda: one_shot)
        assert sum(b.num_rows for b in database.scan_batches("T")) == 3
        fresh = self._batches()
        database.attach_stream("T", lambda: fresh)
        assert sum(b.num_rows for b in database.scan_batches("T")) == 3


# ---------------------------------------------------------------------- #
# knobs and accounting
# ---------------------------------------------------------------------- #
class TestExecutorKnobs:
    def test_unknown_mode_rejected(self, toy_database):
        with pytest.raises(EngineError, match="unknown executor mode"):
            Executor(toy_database, mode="vectorized")

    def test_materialize_mode_peak_is_full_table(self, toy_database):
        executor = Executor(toy_database, mode="materialize")
        query = Query(query_id="q", root="R", relations=("R", "S"))
        executor.execute(query)
        assert executor.stats.peak_batch_rows == 80_000

    def test_pipelined_mode_peak_is_one_batch(self, toy_schema, toy_database):
        streamed = streamed_copy(toy_database, 5_000)
        executor = Executor(streamed, mode="pipelined")
        query = Query(query_id="q", root="R", relations=("R", "S"))
        plan = executor.execute_plan(query)
        assert plan.output_cardinality() == 80_000
        assert 0 < executor.stats.peak_batch_rows <= 5_000
        assert executor.stats.batches >= 2 * 16  # scan + join, 16 batches each

    def test_operator_chains_are_single_use(self, toy_database):
        from repro.engine.pipeline import BatchScan, drain

        scan = BatchScan(toy_database, "S")
        assert drain(scan) == 700
        with pytest.raises(EngineError, match="single-use"):
            drain(scan)
        assert scan.rows_out == 700  # no double counting happened

    def test_empty_stream_yields_empty_result(self, toy_schema):
        database = Database(toy_schema)
        database.attach_stream("T", lambda: iter(()), row_count=0)
        executor = Executor(database, mode="pipelined")
        result = executor.execute(Query(query_id="q", root="T", relations=("T",),
                                        filters={"T": col("C") == 2}))
        assert result.table.num_rows == 0
        assert result.table.has_column("C")
        assert result.plan.output_cardinality() == 0
