"""Unit tests for conjuncts, DNF predicates and the builder DSL."""

from __future__ import annotations

import pytest

from repro.errors import PredicateError
from repro.predicates.conjunct import Conjunct, box_overlaps, box_satisfies
from repro.predicates.dnf import DNFPredicate, and_, col, or_
from repro.predicates.interval import Interval, IntervalSet


class TestConjunct:
    def test_true_conjunct(self):
        c = Conjunct.true()
        assert c.is_true
        assert c.evaluate({"x": 5})
        assert c.attributes == ()

    def test_evaluate(self):
        c = Conjunct({"a": IntervalSet.single(0, 10), "b": IntervalSet.single(5, 6)})
        assert c.evaluate({"a": 3, "b": 5})
        assert not c.evaluate({"a": 30, "b": 5})
        assert not c.evaluate({"a": 3})  # missing attribute fails

    def test_conjoin_intersects_shared_attributes(self):
        c1 = Conjunct({"a": IntervalSet.single(0, 10)})
        c2 = Conjunct({"a": IntervalSet.single(5, 20), "b": IntervalSet.single(1, 2)})
        merged = c1.conjoin(c2)
        assert merged.restriction("a") == IntervalSet.single(5, 10)
        assert merged.restriction("b") == IntervalSet.single(1, 2)

    def test_unsatisfiable(self):
        c = Conjunct({"a": IntervalSet.single(0, 5)}).conjoin(
            Conjunct({"a": IntervalSet.single(5, 10)})
        )
        assert c.is_unsatisfiable

    def test_rename_and_project(self):
        c = Conjunct({"a": IntervalSet.single(0, 5), "b": IntervalSet.single(2, 4)})
        renamed = c.rename({"a": "x"})
        assert set(renamed.attributes) == {"x", "b"}
        projected = c.project(["a"])
        assert projected.attributes == ("a",)

    def test_rejects_non_intervalset(self):
        with pytest.raises(PredicateError):
            Conjunct({"a": (0, 5)})  # type: ignore[dict-item]

    def test_hash_and_eq(self):
        c1 = Conjunct({"a": IntervalSet.single(0, 5)})
        c2 = Conjunct({"a": IntervalSet.single(0, 5)})
        assert c1 == c2 and hash(c1) == hash(c2)


class TestDNFPredicate:
    def test_true_false(self):
        assert DNFPredicate.true().is_true
        assert DNFPredicate.false().is_false
        assert not DNFPredicate.true().is_false

    def test_evaluate_or(self):
        p = DNFPredicate.of(
            Conjunct({"a": IntervalSet.single(0, 5)}),
            Conjunct({"b": IntervalSet.single(10, 20)}),
        )
        assert p.evaluate({"a": 3, "b": 50})
        assert p.evaluate({"a": 50, "b": 15})
        assert not p.evaluate({"a": 50, "b": 50})

    def test_conjoin_distributes(self):
        p1 = DNFPredicate.of(Conjunct({"a": IntervalSet.single(0, 5)}),
                             Conjunct({"a": IntervalSet.single(10, 15)}))
        p2 = DNFPredicate.of(Conjunct({"b": IntervalSet.single(0, 5)}))
        combined = p1.conjoin(p2)
        assert len(combined.conjuncts) == 2
        assert set(combined.attributes) == {"a", "b"}

    def test_conjoin_drops_unsatisfiable(self):
        p1 = DNFPredicate.of(Conjunct({"a": IntervalSet.single(0, 5)}))
        p2 = DNFPredicate.of(Conjunct({"a": IntervalSet.single(5, 10)}))
        assert p1.conjoin(p2).is_false

    def test_attributes_sorted(self):
        p = DNFPredicate.of(Conjunct({"z": IntervalSet.single(0, 1),
                                      "a": IntervalSet.single(0, 1)}))
        assert p.attributes == ("a", "z")

    def test_true_conjunction_identity(self):
        p = DNFPredicate.from_range("a", 0, 5)
        assert DNFPredicate.true().conjoin(p) == p
        assert p.conjoin(DNFPredicate.true()) == p


class TestBuilderDSL:
    def test_comparisons(self):
        assert (col("age") < 40).evaluate({"age": 39})
        assert not (col("age") < 40).evaluate({"age": 40})
        assert (col("age") <= 40).evaluate({"age": 40})
        assert (col("age") >= 40).evaluate({"age": 40})
        assert (col("age") > 40).evaluate({"age": 41})
        assert (col("age") == 40).evaluate({"age": 40})

    def test_between_and_isin(self):
        assert col("age").between(20, 60).evaluate({"age": 59})
        assert not col("age").between(20, 60).evaluate({"age": 60})
        p = col("state").isin([3, 7, 9])
        assert p.evaluate({"state": 7})
        assert not p.evaluate({"state": 8})

    def test_and_or_helpers(self):
        p = and_(col("a") >= 5, col("b") < 3)
        assert p.evaluate({"a": 6, "b": 2})
        assert not p.evaluate({"a": 6, "b": 4})
        q = or_(col("a") >= 5, col("b") < 3)
        assert q.evaluate({"a": 1, "b": 2})

    def test_equality_requires_int(self):
        with pytest.raises(PredicateError):
            _ = col("a") == "x"  # type: ignore[comparison-overlap]


class TestBoxPredicates:
    def test_box_satisfies(self):
        box = {"a": Interval(0, 5), "b": Interval(10, 20)}
        c = Conjunct({"a": IntervalSet.single(0, 10)})
        assert box_satisfies(c, box)
        c2 = Conjunct({"a": IntervalSet.single(0, 3)})
        assert not box_satisfies(c2, box)

    def test_box_satisfies_missing_attr(self):
        box = {"a": Interval(0, 5)}
        c = Conjunct({"z": IntervalSet.single(0, 10)})
        assert not box_satisfies(c, box)

    def test_box_overlaps(self):
        box = {"a": Interval(0, 5)}
        assert box_overlaps(Conjunct({"a": IntervalSet.single(4, 10)}), box)
        assert not box_overlaps(Conjunct({"a": IntervalSet.single(5, 10)}), box)
