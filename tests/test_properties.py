"""Seeded randomized property tests (pure ``random``/``numpy``).

Two families of invariants guard the core of the pipeline:

* **Partition invariants** — for random cardinality-constraint sets, the
  region partition must consist of pairwise-disjoint boxes, cover the whole
  domain, and label every region with exactly the constraints its points
  satisfy (the defining property of the quotient partition, Definition 4.1).
* **Generation invariants** — for random relation summaries, the vectorised
  ``stream()`` path must reproduce ``materialize()`` column-for-column at
  every batch size, including the degenerate ``1`` and the default-sized
  ``65536``.
"""

from __future__ import annotations

import random
from typing import Dict, List

import numpy as np
import pytest

from repro.partition.region import optimal_partition
from repro.predicates.conjunct import Conjunct
from repro.predicates.dnf import DNFPredicate
from repro.predicates.interval import Interval, IntervalSet
from repro.summary.relation_summary import RelationSummary
from repro.tuplegen.generator import TupleGenerator
from repro.views.preprocess import ViewConstraint

BATCH_SIZES = (1, 7, 65_536)


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def random_constraints(rng: random.Random, attributes: List[str],
                       domains: Dict[str, Interval]) -> List[ViewConstraint]:
    """Build 1-4 random conjunctive range constraints over the attributes."""
    constraints: List[ViewConstraint] = []
    for _ in range(rng.randint(1, 4)):
        restrictions: Dict[str, IntervalSet] = {}
        for attribute in attributes:
            if rng.random() < 0.3:
                continue  # leave the attribute unconstrained
            domain = domains[attribute]
            lo = rng.randint(domain.lo, domain.hi - 1)
            hi = rng.randint(lo + 1, domain.hi)
            restrictions[attribute] = IntervalSet.single(lo, hi)
        predicate = (DNFPredicate.of(Conjunct(restrictions))
                     if restrictions else DNFPredicate.true())
        constraints.append(ViewConstraint(predicate=predicate,
                                          cardinality=rng.randint(1, 1000)))
    return constraints


def point_satisfies(predicate: DNFPredicate, point: Dict[str, int]) -> bool:
    """Ground-truth point evaluation of a DNF predicate."""
    if predicate.is_true:
        return True
    return any(
        all(values.contains(point[attr])
            for attr, values in conjunct.constraints.items() if attr in point)
        for conjunct in predicate.conjuncts
    )


# ---------------------------------------------------------------------- #
# partition invariants
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(12))
def test_partition_disjoint_covering_and_correctly_labelled(seed):
    rng = random.Random(1000 + seed)
    num_attributes = rng.randint(1, 2)
    attributes = [f"a{i}" for i in range(num_attributes)]
    domains = {
        attribute: Interval(0, rng.choice([10, 25, 100]))
        for attribute in attributes
    }
    constraints = random_constraints(rng, attributes, domains)
    regions = optimal_partition(attributes, domains, constraints)

    # disjoint: no two boxes (within or across regions) overlap
    boxes = [box for region in regions for box in region.boxes]
    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            assert boxes[i].intersect(boxes[j]) is None, (seed, boxes[i], boxes[j])

    # covering: volumes add up to the full domain volume
    domain_volume = 1
    for attribute in attributes:
        domain_volume *= domains[attribute].width
    assert sum(region.volume() for region in regions) == domain_volume

    # labels are distinct per region
    labels = [region.label for region in regions]
    assert len(labels) == len(set(labels))

    # label correctness at sampled points: the region's label must be exactly
    # the set of constraints satisfied by each of its points
    for region in regions:
        for box in region.boxes:
            samples = [box.corner()]
            samples.append({a: box.interval(a).hi - 1 for a in attributes})
            samples.append({
                a: rng.randint(box.interval(a).lo, box.interval(a).hi - 1)
                for a in attributes
            })
            for point in samples:
                satisfied = frozenset(
                    index for index, constraint in enumerate(constraints)
                    if point_satisfies(constraint.predicate, point)
                )
                assert satisfied == region.label, (seed, point, region.label)


@pytest.mark.parametrize("seed", range(6))
def test_partition_labels_cover_every_domain_point_once(seed):
    """Every integer point of a small domain falls in exactly one region."""
    rng = random.Random(2000 + seed)
    attributes = ["x", "y"]
    domains = {"x": Interval(0, 8), "y": Interval(0, 8)}
    constraints = random_constraints(rng, attributes, domains)
    regions = optimal_partition(attributes, domains, constraints)
    for x in range(8):
        for y in range(8):
            hits = [
                region for region in regions
                if any(box.contains_point({"x": x, "y": y}) for box in region.boxes)
            ]
            assert len(hits) == 1, (seed, x, y)


# ---------------------------------------------------------------------- #
# generation invariants
# ---------------------------------------------------------------------- #
def random_summary(rng: np.random.Generator) -> RelationSummary:
    num_columns = int(rng.integers(1, 4))
    columns = tuple(f"c{i}" for i in range(num_columns))
    num_rows = int(rng.integers(0, 30))
    rows = []
    for _ in range(num_rows):
        values = tuple(int(v) for v in rng.integers(0, 1000, size=num_columns))
        # occasional zero-count rows exercise the searchsorted boundaries
        count = int(rng.integers(0, 500)) if rng.random() < 0.9 else 0
        rows.append((values, count))
    return RelationSummary(relation="rand", primary_key="pk",
                           columns=columns, rows=rows)


@pytest.mark.parametrize("seed", range(10))
def test_stream_equals_materialize_for_all_batch_sizes(seed):
    rng = np.random.default_rng(3000 + seed)
    summary = random_summary(rng)
    generator = TupleGenerator(summary)
    reference = generator.materialize()
    assert reference.num_rows == summary.total_rows()
    for batch_size in BATCH_SIZES:
        batches = list(generator.stream(batch_size=batch_size))
        assert sum(b.num_rows for b in batches) == reference.num_rows
        for column in ("pk",) + summary.columns:
            if batches:
                streamed = np.concatenate([b.column(column) for b in batches])
            else:
                streamed = np.empty(0, dtype=np.int64)
            assert np.array_equal(streamed, reference.column(column)), \
                (seed, batch_size, column)


@pytest.mark.parametrize("seed", range(4))
def test_table_from_stream_equals_materialize(seed):
    rng = np.random.default_rng(4000 + seed)
    summary = random_summary(rng)
    generator = TupleGenerator(summary)
    reference = generator.materialize()
    for batch_size in BATCH_SIZES:
        assembled = generator.table_from_stream(batch_size=batch_size)
        assert assembled.num_rows == reference.num_rows
        for column in ("pk",) + summary.columns:
            assert np.array_equal(assembled.column(column), reference.column(column))
