"""Unit tests for the relational schema model."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.predicates.interval import Interval
from repro.schema.relation import Attribute, ForeignKey, Relation
from repro.schema.schema import Schema


def _rel(name, pk, attrs=(), fks=(), rows=10):
    return Relation(
        name=name, primary_key=pk,
        attributes=[Attribute(a, Interval(0, 100)) for a in attrs],
        foreign_keys=[ForeignKey(column=c, target=t) for c, t in fks],
        row_count=rows,
    )


class TestRelation:
    def test_basic_accessors(self):
        rel = _rel("orders", "o_id", attrs=["o_total"], fks=[("o_cust", "customer")])
        assert rel.attribute_names == ("o_total",)
        assert rel.foreign_key_columns == ("o_cust",)
        assert rel.all_columns == ("o_id", "o_cust", "o_total")
        assert rel.attribute("o_total").domain == Interval(0, 100)
        assert rel.has_attribute("o_total")
        assert not rel.has_attribute("o_id")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation(name="r", primary_key="pk",
                     attributes=[Attribute("a", Interval(0, 1)), Attribute("a", Interval(0, 1))])

    def test_pk_in_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation(name="r", primary_key="a",
                     attributes=[Attribute("a", Interval(0, 1))])

    def test_missing_attribute_raises(self):
        rel = _rel("r", "pk", attrs=["a"])
        with pytest.raises(SchemaError):
            rel.attribute("zzz")

    def test_foreign_key_to(self):
        rel = _rel("r", "pk", fks=[("fk1", "s")])
        assert rel.foreign_key_to("s").column == "fk1"
        assert rel.foreign_key_to("missing") is None

    def test_scaled(self):
        rel = _rel("r", "pk", rows=100)
        assert rel.scaled(0.5).row_count == 50
        assert rel.scaled(0.0001).row_count == 1  # never drops to zero

    def test_negative_row_count_rejected(self):
        with pytest.raises(SchemaError):
            _rel("r", "pk", rows=-1)


class TestSchema:
    def test_validation_and_lookup(self):
        schema = Schema([
            _rel("dim", "d_pk", attrs=["d_a"]),
            _rel("fact", "f_pk", attrs=["f_x"], fks=[("f_dim", "dim")]),
        ])
        assert len(schema) == 2
        assert "fact" in schema
        assert schema.relation("dim").name == "dim"
        assert schema.attribute_owner("d_a").name == "dim"
        assert schema.attribute("f_x").name == "f_x"

    def test_unknown_relation_raises(self):
        schema = Schema([_rel("a", "a_pk")])
        with pytest.raises(SchemaError):
            schema.relation("zzz")
        with pytest.raises(SchemaError):
            schema.attribute_owner("zzz")

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema([_rel("a", "a_pk"), _rel("a", "a_pk2")])

    def test_global_attribute_uniqueness(self):
        with pytest.raises(SchemaError):
            Schema([_rel("a", "a_pk", attrs=["x"]), _rel("b", "b_pk", attrs=["x"])])

    def test_dangling_fk_rejected(self):
        with pytest.raises(SchemaError):
            Schema([_rel("a", "a_pk", fks=[("fk", "missing")])])

    def test_self_reference_rejected(self):
        with pytest.raises(SchemaError):
            Schema([_rel("a", "a_pk", fks=[("fk", "a")])])

    def test_double_reference_same_target_rejected(self):
        with pytest.raises(SchemaError):
            Schema([
                _rel("dim", "d_pk"),
                Relation(name="fact", primary_key="f_pk", foreign_keys=[
                    ForeignKey("fk1", "dim"), ForeignKey("fk2", "dim"),
                ]),
            ])

    def test_cycle_rejected(self):
        with pytest.raises(SchemaError):
            Schema([
                _rel("a", "a_pk", fks=[("a_to_b", "b")]),
                _rel("b", "b_pk", fks=[("b_to_a", "a")]),
            ])

    def test_topological_order_references_first(self):
        schema = Schema([
            _rel("fact", "f_pk", fks=[("f_dim", "dim")]),
            _rel("dim", "d_pk", fks=[("d_sub", "subdim")]),
            _rel("subdim", "s_pk"),
        ])
        order = schema.topological_order()
        assert order.index("subdim") < order.index("dim") < order.index("fact")

    def test_referenced_closure_transitive(self):
        schema = Schema([
            _rel("fact", "f_pk", fks=[("f_dim", "dim")]),
            _rel("dim", "d_pk", fks=[("d_sub", "subdim")]),
            _rel("subdim", "s_pk"),
            _rel("other", "o_pk"),
        ])
        closure = schema.referenced_closure("fact")
        assert set(closure) == {"dim", "subdim"}
        assert schema.referenced_closure("other") == []

    def test_dependents_of(self):
        schema = Schema([
            _rel("dim", "d_pk"),
            _rel("fact1", "f1_pk", fks=[("f1_dim", "dim")]),
            _rel("fact2", "f2_pk", fks=[("f2_dim", "dim")]),
        ])
        assert schema.dependents_of("dim") == ["fact1", "fact2"]

    def test_join_path(self):
        schema = Schema([
            _rel("fact", "f_pk", fks=[("f_dim", "dim")]),
            _rel("dim", "d_pk", fks=[("d_sub", "subdim")]),
            _rel("subdim", "s_pk"),
        ])
        assert schema.join_path("fact", "subdim") == ["fact", "dim", "subdim"]
        assert schema.join_path("subdim", "fact") is None
        assert schema.join_path("fact", "fact") == ["fact"]

    def test_tree_vs_dag_detection(self):
        tree = Schema([
            _rel("fact", "f_pk", fks=[("f_dim", "dim")]),
            _rel("dim", "d_pk"),
        ])
        assert tree.is_tree_structured()
        dag = Schema([
            _rel("a", "a_pk", fks=[("a_b", "b"), ("a_c", "c")]),
            _rel("b", "b_pk", fks=[("b_d", "d")]),
            _rel("c", "c_pk", fks=[("c_d", "d")]),
            _rel("d", "d_pk"),
        ])
        assert not dag.is_tree_structured()

    def test_scaled_and_total_rows(self):
        schema = Schema([_rel("a", "a_pk", rows=100), _rel("b", "b_pk", rows=50)])
        assert schema.total_rows() == 150
        assert schema.scaled(2.0).total_rows() == 300
