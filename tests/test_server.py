"""Protocol and concurrency suite for the HTTP serving front-end.

Everything runs over a real socket against :class:`repro.server
.RegenerationServer`: warm zero-solve serving, NDJSON byte-identity with
in-process materialisation at several shard counts, the 409/503/429 status
contracts, concurrent multi-tenant admission, abrupt-disconnect pin
release, graceful-shutdown drain, ``/metrics`` scraping and cross-socket
trace propagation — plus the wire codec and the service's idle-cursor
reaper underneath it all.
"""

from __future__ import annotations

import http.client
import json
import re
import socket
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.api import (
    BackendBuild,
    PipelineBackend,
    RegenConfig,
    register_backend,
)
from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.errors import ConfigError, ServiceError
from repro.obs.trace import build_tree, get_tracer, parse_jsonl
from repro.predicates.dnf import DNFPredicate, col
from repro.predicates.interval import Interval
from repro.schema.relation import Attribute, ForeignKey, Relation
from repro.schema.schema import Schema
from repro.server import (
    TRACE_HEADER,
    RegenerationServer,
    WireFormatError,
    constraint_set_from_wire,
    constraint_set_to_wire,
    ndjson_batch,
    parse_shard,
    shard_bounds,
)
from repro.service.fingerprint import workload_fingerprint
from repro.service.service import RegenerationService
from repro.summary.relation_summary import DatabaseSummary, RelationSummary
from repro.tuplegen.generator import TupleGenerator


def make_toy_schema() -> Schema:
    """The paper's Figure 1 R/S/T schema (module-scoped fixtures cannot use
    the function-scoped ``toy_schema`` fixture)."""
    return Schema(
        [
            Relation(name="S", primary_key="S_pk", row_count=700,
                     attributes=[Attribute("A", Interval(0, 100)),
                                 Attribute("B", Interval(0, 50))]),
            Relation(name="T", primary_key="T_pk", row_count=1500,
                     attributes=[Attribute("C", Interval(0, 10))]),
            Relation(name="R", primary_key="R_pk", row_count=80_000,
                     foreign_keys=[ForeignKey(column="S_fk", target="S"),
                                   ForeignKey(column="T_fk", target="T")],
                     attributes=[]),
        ],
        name="toy",
    )


def toy_ccs(name: str = "toy-ccs") -> ConstraintSet:
    ccs = ConstraintSet(name=name)
    ccs.add(CardinalityConstraint("S", col("A").between(20, 60), 400))
    ccs.add(CardinalityConstraint("S", DNFPredicate.true(), 700))
    ccs.add(CardinalityConstraint("T", col("C") == 2, 900))
    ccs.add(CardinalityConstraint("T", DNFPredicate.true(), 1500))
    ccs.add(CardinalityConstraint("R", DNFPredicate.true(), 80_000))
    return ccs


# ---------------------------------------------------------------------- #
# HTTP helpers (stdlib only, like any external client)
# ---------------------------------------------------------------------- #
def http_get(server: RegenerationServer, path: str,
             headers: dict = None) -> SimpleNamespace:
    request = urllib.request.Request(server.url + path,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return SimpleNamespace(status=response.status,
                                   headers=dict(response.headers),
                                   body=response.read())
    except urllib.error.HTTPError as error:
        return SimpleNamespace(status=error.code,
                               headers=dict(error.headers),
                               body=error.read())


def http_post_json(server: RegenerationServer, path: str, payload: dict,
                   headers: dict = None) -> SimpleNamespace:
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return SimpleNamespace(status=response.status,
                                   headers=dict(response.headers),
                                   body=response.read())
    except urllib.error.HTTPError as error:
        return SimpleNamespace(status=error.code,
                               headers=dict(error.headers),
                               body=error.read())


def as_json(response: SimpleNamespace) -> dict:
    return json.loads(response.body)


def wait_until(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def reference_ndjson(service: RegenerationService, fingerprint: str,
                     relation: str) -> bytes:
    """The NDJSON encoding of the fully materialised relation."""
    summary = service.store.get_summary(fingerprint)
    return ndjson_batch(TupleGenerator(summary.relation(relation)).materialize())


# ---------------------------------------------------------------------- #
# module fixtures: one warm store built by a throwaway service, then a
# fresh service (clean registry: zero recorded solves) behind one server
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    schema = make_toy_schema()
    store = str(tmp_path_factory.mktemp("server-store"))
    with RegenerationService(schema, store=store) as builder:
        builder.summarize(toy_ccs(), timeout=300)
        fingerprint = builder.fingerprint(toy_ccs())
    return SimpleNamespace(schema=schema, store=store, fingerprint=fingerprint)


@pytest.fixture(scope="module")
def service(warm_store):
    service = RegenerationService(warm_store.schema, store=warm_store.store)
    yield service
    service.close()


@pytest.fixture(scope="module")
def server(service):
    with RegenerationServer(service) as server:
        yield server


# ---------------------------------------------------------------------- #
# wire codec
# ---------------------------------------------------------------------- #
class TestWireCodec:
    def test_workload_round_trip_is_fingerprint_exact(self):
        schema = make_toy_schema()
        original = toy_ccs()
        decoded = constraint_set_from_wire(
            json.loads(json.dumps(constraint_set_to_wire(original))))
        assert workload_fingerprint(schema, decoded) == \
            workload_fingerprint(schema, original)

    def test_round_trip_preserves_join_metadata(self):
        predicate = (col("A") < 30).disjoin(col("B").between(5, 9))
        ccs = ConstraintSet([CardinalityConstraint(
            "R", predicate, 123, joined_relations=("R", "S"), query_id="q7")])
        decoded = constraint_set_from_wire(constraint_set_to_wire(ccs))
        cc = list(decoded)[0]
        assert cc.joined_relations == ("R", "S")
        assert cc.query_id == "q7"
        assert cc.predicate == predicate

    @pytest.mark.parametrize("payload", [
        "not an object",
        {"constraints": "nope"},
        {"version": 99, "constraints": []},
        {"constraints": [{"relation": "S"}]},                  # no cardinality
        {"constraints": [{"relation": "S", "cardinality": 1,
                          "predicate": {"A": []}}]},           # not a list
        {"constraints": [{"relation": "S", "cardinality": 1,
                          "predicate": [{"A": [[1]]}]}]},      # bad pair
    ])
    def test_malformed_workloads_rejected(self, payload):
        with pytest.raises(WireFormatError):
            constraint_set_from_wire(payload)

    @pytest.mark.parametrize("total,count", [(0, 1), (7, 3), (700, 8),
                                             (5, 8), (80_000, 16)])
    def test_shard_bounds_partition_exactly(self, total, count):
        rows = []
        previous_stop = 0
        for index in range(1, count + 1):
            start, stop = shard_bounds(total, index, count)
            assert start == previous_stop + 1
            previous_stop = stop
            rows.append(max(0, stop - start + 1))
        assert previous_stop == total
        assert sum(rows) == total
        assert max(rows) - min(rows) <= 1  # near-equal split

    @pytest.mark.parametrize("spec", ["", "3", "0/4", "5/4", "a/b", "1/0"])
    def test_bad_shard_specs_rejected(self, spec):
        with pytest.raises(WireFormatError):
            parse_shard(spec)

    def test_ndjson_batch_shape(self):
        import numpy as np

        from repro.engine.table import Table

        table = Table({"pk": np.array([1, 2], dtype=np.int64),
                       "A": np.array([7, 9], dtype=np.int64)})
        assert ndjson_batch(table) == b'{"pk":1,"A":7}\n{"pk":2,"A":9}\n'
        assert ndjson_batch(Table({"pk": np.array([], dtype=np.int64)})) == b""


# ---------------------------------------------------------------------- #
# warm serving over the socket
# ---------------------------------------------------------------------- #
class TestWarmServing:
    def test_summarize_serves_warm(self, server, warm_store):
        response = http_post_json(server, "/v1/summarize", {
            "workload": constraint_set_to_wire(toy_ccs()),
            "tenant": "alpha",
        })
        assert response.status == 200
        body = as_json(response)
        assert body["warm"] is True
        assert body["fingerprint"] == warm_store.fingerprint
        assert body["relations"] == {"S": 700, "T": 1500, "R": 80_000}
        assert body["total_rows"] == 82_200

    @pytest.mark.parametrize("shard_count", [1, 3, 8])
    def test_stream_matches_materialize_bytes(self, server, service,
                                              warm_store, shard_count):
        fingerprint = warm_store.fingerprint
        collected = b""
        shard_rows = 0
        for index in range(1, shard_count + 1):
            response = http_get(
                server,
                f"/v1/stream/{fingerprint}/S?shard={index}/{shard_count}"
                "&batch_size=97")
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-ndjson"
            assert response.headers["X-Repro-Total-Rows"] == "700"
            assert response.headers["X-Repro-Shard"] == f"{index}/{shard_count}"
            shard_rows += int(response.headers["X-Repro-Shard-Rows"])
            collected += response.body
        assert shard_rows == 700
        assert collected == reference_ndjson(service, fingerprint, "S")

    def test_zero_lp_solves_on_warm_path(self, server, service, warm_store):
        # The module service never built anything — its registry must show
        # zero solver invocations even after summarize + stream over HTTP.
        http_post_json(server, "/v1/summarize",
                       {"workload": constraint_set_to_wire(toy_ccs())})
        http_get(server,
                 f"/v1/stream/{warm_store.fingerprint}/T?batch_size=400")
        response = http_get(server, "/metrics")
        assert response.status == 200
        text = response.body.decode()
        assert "repro_lp_components_solved_total 0" in text
        assert service.stats()["pipeline_runs"] == 0

    def test_healthz(self, server):
        response = http_get(server, "/healthz")
        assert response.status == 200
        body = as_json(response)
        assert body["status"] == "ok"
        assert body["engine"] == "hydra"

    def test_stats_endpoint(self, server):
        http_post_json(server, "/v1/summarize", {
            "workload": constraint_set_to_wire(toy_ccs()),
            "tenant": "stats-tenant",
        })
        body = as_json(http_get(server, "/v1/stats"))
        assert body["counters"]["hits"] >= 1
        assert body["queue_depth"] == 0
        tenants = {row["tenant"]: row for row in body["tenants"]}
        assert "stats-tenant" not in tenants or \
            tenants["stats-tenant"]["admitted"] == 0  # warm: no cold build

    def test_metrics_scrape_parses(self, server):
        http_get(server, "/healthz")
        response = http_get(server, "/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        line_re = re.compile(
            r"^[a-z_:][a-z0-9_:]*(\{[^}]*\})? -?[0-9][0-9a-z.+-]*$",
            re.IGNORECASE)
        lines = response.body.decode().splitlines()
        assert lines, "empty scrape"
        for line in lines:
            if line.startswith("#") or not line.strip():
                continue
            assert line_re.match(line), f"unparseable metric line: {line!r}"
        text = "\n".join(lines)
        assert 'repro_server_requests_total{endpoint="healthz",code="200"}' \
            in text
        assert "repro_server_active_requests" in text


# ---------------------------------------------------------------------- #
# trace propagation across the socket
# ---------------------------------------------------------------------- #
class TestTracePropagation:
    def test_trace_id_round_trips_into_span_jsonl(self, server, warm_store,
                                                  tmp_path):
        tracer = get_tracer()
        tracer.clear()
        trace_id = "f" * 32
        response = http_post_json(
            server, "/v1/summarize",
            {"workload": constraint_set_to_wire(toy_ccs())},
            headers={TRACE_HEADER: trace_id})
        assert response.status == 200
        assert response.headers[TRACE_HEADER] == trace_id

        path = tmp_path / "spans.jsonl"
        wait_until(lambda: any(s["name"] == "server.request"
                               for s in tracer.spans()),
                   message="server.request span export")
        tracer.export(path)
        records = parse_jsonl(path.read_text())
        in_trace = [r for r in records if r["trace_id"] == trace_id]
        names = {r["name"] for r in in_trace}
        assert "server.request" in names
        assert "service.submit" in names  # the service span joined the trace
        roots = [r for r in build_tree(in_trace) if r["parent_id"] is None]
        assert [r["name"] for r in roots] == ["server.request"]
        assert roots[0]["attributes"]["status"] == 200

    def test_untraced_requests_get_no_header(self, server):
        response = http_get(server, "/healthz")
        assert TRACE_HEADER not in response.headers


# ---------------------------------------------------------------------- #
# error mapping
# ---------------------------------------------------------------------- #
class TestErrorContracts:
    def test_unknown_route_404(self, server):
        assert http_get(server, "/v2/nope").status == 404
        assert http_post_json(server, "/healthz", {}).status == 404

    def test_unknown_fingerprint_404(self, server):
        response = http_get(server, f"/v1/stream/{'0' * 64}/S")
        assert response.status == 404
        assert "submit the workload" in as_json(response)["error"]

    def test_unknown_relation_404(self, server, warm_store):
        response = http_get(
            server, f"/v1/stream/{warm_store.fingerprint}/Missing")
        assert response.status == 404

    @pytest.mark.parametrize("query", ["shard=9/4", "shard=bad",
                                       "batch_size=0", "batch_size=x"])
    def test_bad_stream_params_400(self, server, warm_store, query):
        response = http_get(
            server, f"/v1/stream/{warm_store.fingerprint}/S?{query}")
        assert response.status == 400

    @pytest.mark.parametrize("payload", [{}, {"workload": 17},
                                         {"workload": {"constraints": "x"}}])
    def test_bad_summarize_body_400(self, server, payload):
        assert http_post_json(server, "/v1/summarize", payload).status == 400

    def test_non_json_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/summarize", data=b"\xff\xfenot json")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400


# ---------------------------------------------------------------------- #
# status contracts: 409 (require_warm), 429 (overload), 503 (busy/drain)
# ---------------------------------------------------------------------- #
class TestStatusContracts:
    def test_require_warm_409_for_cold_workload(self, warm_store):
        with RegenerationService(warm_store.schema,
                                 store=warm_store.store) as service:
            with RegenerationServer(service, require_warm=True) as server:
                warm = http_post_json(server, "/v1/summarize", {
                    "workload": constraint_set_to_wire(toy_ccs())})
                assert warm.status == 200

                cold = http_post_json(server, "/v1/summarize", {
                    "workload": constraint_set_to_wire(toy_ccs().scaled(3.0))})
                assert cold.status == 409
                assert "fingerprint" in as_json(cold)
            assert service.stats()["pipeline_runs"] == 0

    def test_overloaded_submission_429(self, warm_store):
        with RegenerationService(warm_store.schema, store=warm_store.store,
                                 max_pending=0) as service:
            with RegenerationServer(service) as server:
                # warm workloads are always admitted
                assert http_post_json(server, "/v1/summarize", {
                    "workload": constraint_set_to_wire(toy_ccs()),
                }).status == 200
                cold = http_post_json(server, "/v1/summarize", {
                    "workload": constraint_set_to_wire(toy_ccs().scaled(2.0))})
                assert cold.status == 429
                assert cold.headers["Retry-After"] == "1"
        assert service.stats()["rejected_submissions"] == 1

    def test_max_connections_503(self, warm_store):
        with RegenerationService(warm_store.schema,
                                 store=warm_store.store) as service:
            with RegenerationServer(service, max_connections=1) as server:
                # Occupy the only slot with a stream too large for the
                # socket buffers, read only its headers.
                connection = http.client.HTTPConnection(server.host,
                                                        server.port,
                                                        timeout=30)
                connection.request(
                    "GET", f"/v1/stream/{warm_store.fingerprint}/R"
                           "?batch_size=2000")
                response = connection.getresponse()
                assert response.status == 200
                wait_until(lambda: server.active_requests() >= 1,
                           message="stream registered in flight")
                busy = http_get(server, "/v1/stats")
                assert busy.status == 503
                assert as_json(busy)["status"] == "busy"
                assert busy.headers["Retry-After"] == "1"
                # Drain the stream; capacity frees up again.
                response.read()
                connection.close()
                wait_until(lambda: server.active_requests() == 0,
                           message="stream drained")
                assert http_get(server, "/v1/stats").status == 200

    def test_graceful_shutdown_drains_streams(self, warm_store):
        service = RegenerationService(warm_store.schema,
                                      store=warm_store.store)
        server = RegenerationServer(service).start()
        fingerprint = warm_store.fingerprint
        # In-flight stream: R's ~3 MB NDJSON cannot fit the socket buffers.
        stream_connection = http.client.HTTPConnection(server.host,
                                                       server.port,
                                                       timeout=60)
        stream_connection.request(
            "GET", f"/v1/stream/{fingerprint}/R?batch_size=4000")
        stream_response = stream_connection.getresponse()
        first = stream_response.read(100_000)
        # A second keep-alive connection established before the drain starts.
        idle_connection = http.client.HTTPConnection(server.host, server.port,
                                                     timeout=30)
        idle_connection.request("GET", "/healthz")
        assert idle_connection.getresponse().read()

        shutdown = threading.Thread(target=server.shutdown)
        shutdown.start()
        try:
            wait_until(lambda: server.draining, message="drain to start")
            # New work on the surviving connection is refused while draining.
            idle_connection.request("GET", "/v1/stats")
            refused = idle_connection.getresponse()
            body = json.loads(refused.read())
            assert refused.status == 503
            assert body["status"] == "draining"
            # ...but the in-flight stream runs to completion, intact.
            rest = stream_response.read()
            assert (first + rest) == reference_ndjson(service, fingerprint,
                                                      "R")
        finally:
            stream_connection.close()
            idle_connection.close()
            shutdown.join(timeout=30)
        assert not shutdown.is_alive()
        assert service.store.pin_count(fingerprint) == 0
        service.close()


# ---------------------------------------------------------------------- #
# concurrent multi-tenant admission over HTTP
# ---------------------------------------------------------------------- #
class _GatedBackend(PipelineBackend):
    """Backend whose builds block on an event (per-tenant admission tests
    need cold builds that stay pending without burning LP time)."""

    name = "server-gated"

    def __init__(self, schema, config, store=None, gate=None) -> None:
        self.schema = schema
        self.config = config
        self.gate = gate

    def fingerprint(self, constraints, relations=None):
        return workload_fingerprint(self.schema, constraints,
                                    relations=relations, profile=[self.name])

    def build(self, constraints, relations=None):
        if self.gate is not None:
            self.gate.wait(timeout=60)
        summary = DatabaseSummary()
        summary.relations["S"] = RelationSummary(
            relation="S", primary_key="S_pk", columns=("A", "B"),
            rows=[((1, 2), len(constraints))])
        return BackendBuild(summary=summary)


class TestMultiTenant:
    def test_noisy_tenant_throttled_quiet_admitted(self):
        schema = make_toy_schema()
        gate = threading.Event()
        register_backend(
            "server-gated",
            lambda schema, config, store=None: _GatedBackend(
                schema, config, store, gate=gate))
        service = RegenerationService(
            schema, config=RegenConfig(engine="server-gated"),
            max_workers=1, max_pending_per_tenant=1)
        try:
            with RegenerationServer(service) as server:
                def submit(tenant: str, scale: float, out: list) -> None:
                    response = http_post_json(server, "/v1/summarize", {
                        "workload": constraint_set_to_wire(
                            toy_ccs().scaled(scale)),
                        "tenant": tenant,
                        "wait": False,
                    })
                    out.append(response.status)

                # The noisy tenant floods distinct cold workloads
                # concurrently; the quiet tenant sends one.
                noisy: list = []
                quiet: list = []
                threads = [threading.Thread(target=submit,
                                            args=("noisy", 2.0 + i, noisy))
                           for i in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                submit("quiet", 50.0, quiet)

                assert sorted(noisy).count(202) == 1   # one admitted
                assert sorted(noisy).count(429) == 3   # the rest throttled
                assert quiet == [202]                  # quiet unaffected
                body = as_json(http_get(server, "/v1/stats"))
                tenants = {row["tenant"]: row for row in body["tenants"]}
                assert tenants["noisy"]["rejected"] == 3
                assert tenants["quiet"]["rejected"] == 0
                gate.set()
                wait_until(lambda: service.stats()["queue_depth"] == 0,
                           message="queued builds to finish")
        finally:
            gate.set()
            service.close()


# ---------------------------------------------------------------------- #
# abrupt disconnects and the idle-cursor reaper
# ---------------------------------------------------------------------- #
class TestPinRelease:
    def test_abrupt_disconnect_releases_pin(self, warm_store):
        with RegenerationService(warm_store.schema,
                                 store=warm_store.store) as service:
            with RegenerationServer(service) as server:
                fingerprint = warm_store.fingerprint
                raw = socket.create_connection((server.host, server.port),
                                               timeout=30)
                raw.sendall(
                    f"GET /v1/stream/{fingerprint}/R?batch_size=2000"
                    f" HTTP/1.1\r\nHost: {server.host}\r\n\r\n"
                    .encode("ascii"))
                raw.recv(65536)  # read a little of the stream...
                wait_until(
                    lambda: service.store.pin_count(fingerprint) >= 1,
                    message="stream to take its pin")
                # ...then vanish without closing the stream properly.
                raw.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                               b"\x01\x00\x00\x00\x00\x00\x00\x00")  # RST
                raw.close()
                wait_until(
                    lambda: service.store.pin_count(fingerprint) == 0,
                    message="disconnect to release the store pin")

    def test_reaper_reclaims_abandoned_cursor(self, warm_store):
        with RegenerationService(warm_store.schema,
                                 store=warm_store.store) as service:
            fingerprint = warm_store.fingerprint
            cursor = service.stream(fingerprint, "S", batch_size=100)
            next(cursor)
            assert service.store.pin_count(fingerprint) == 1
            # Reader dies; its cursor reference survives (no GC rescue).
            assert service.reap_idle_cursors(idle_seconds=100.0) == 0
            time.sleep(0.05)
            assert service.reap_idle_cursors(idle_seconds=0.01) == 1
            assert service.store.pin_count(fingerprint) == 0
            with pytest.raises(ServiceError, match="reaped"):
                next(cursor)
            assert service.stats()["cursors_reaped"] == 1
            # Idempotent: the same cursor is never reaped (or unpinned) twice.
            assert service.reap_idle_cursors(idle_seconds=0.01) == 0

    def test_background_reaper_thread(self, warm_store):
        service = RegenerationService(warm_store.schema,
                                      store=warm_store.store,
                                      cursor_idle_timeout=0.2)
        try:
            fingerprint = warm_store.fingerprint
            cursor = service.stream(fingerprint, "S", batch_size=100)
            next(cursor)
            wait_until(
                lambda: service.store.pin_count(fingerprint) == 0,
                timeout=15.0,
                message="background reaper to reclaim the pin")
            with pytest.raises(ServiceError, match="reaped"):
                next(cursor)
        finally:
            service.close()

    def test_active_cursor_not_reaped(self, warm_store):
        with RegenerationService(warm_store.schema,
                                 store=warm_store.store) as service:
            cursor = service.stream(warm_store.fingerprint, "S",
                                    batch_size=50)
            for _ in range(3):
                next(cursor)
                assert service.reap_idle_cursors(idle_seconds=30.0) == 0
            cursor.close()
            assert service.store.pin_count(warm_store.fingerprint) == 0


# ---------------------------------------------------------------------- #
# config knobs
# ---------------------------------------------------------------------- #
class TestServingConfig:
    def test_knob_validation(self):
        with pytest.raises(ConfigError):
            RegenConfig(listen_port=70_000)
        with pytest.raises(ConfigError):
            RegenConfig(max_connections=0)
        with pytest.raises(ConfigError):
            RegenConfig(request_timeout=0.0)
        with pytest.raises(ConfigError):
            RegenConfig(cursor_idle_timeout=-1.0)
        RegenConfig(listen_port=0, max_connections=1, request_timeout=0.5,
                    cursor_idle_timeout=5.0)

    def test_serving_knobs_do_not_change_fingerprints(self):
        schema = make_toy_schema()
        base = RegenerationService(schema, config=RegenConfig())
        tuned = RegenerationService(schema, config=RegenConfig(
            listen_host="0.0.0.0", listen_port=8080, max_connections=2,
            request_timeout=1.5, cursor_idle_timeout=9.0))
        try:
            assert base.fingerprint(toy_ccs()) == tuned.fingerprint(toy_ccs())
        finally:
            base.close()
            tuned.close()

    def test_config_threads_cursor_idle_timeout(self):
        schema = make_toy_schema()
        service = RegenerationService(
            schema, config=RegenConfig(cursor_idle_timeout=123.0))
        try:
            assert service.cursor_idle_timeout == 123.0
            assert service._reaper_thread is not None
        finally:
            service.close()

    def test_server_rejects_bad_knobs(self, service):
        with pytest.raises(ServiceError):
            RegenerationServer(service, max_connections=0)
        with pytest.raises(ServiceError):
            RegenerationServer(service, request_timeout=0.0)
