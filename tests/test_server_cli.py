"""Two-process test of ``python -m repro serve --listen``.

Process 1 warms a store (``summarize``), process 2 serves it over HTTP
(``serve --listen 127.0.0.1:0 --require-warm``), and this test process —
a third party knowing only the CLI flags — talks to it with ``urllib``:
fingerprint-exact warm summarize over the wire, sharded NDJSON streaming,
``/metrics`` showing zero LP solves, and a clean SIGTERM shutdown.  A cold
store under ``--require-warm`` must exit :data:`repro.cli.EXIT_NOT_WARM`
*before* binding the socket.
"""

from __future__ import annotations

import json
import os
import select
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli import EXIT_NOT_WARM

REPO = Path(__file__).resolve().parent.parent
FLAGS = ["--scale", "0.0002", "--queries", "3", "--workload", "simple"]


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def run_cli(*argv: str) -> "subprocess.CompletedProcess[str]":
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=cli_env(), cwd=REPO, timeout=300,
    )


def read_line(proc: "subprocess.Popen[str]", timeout: float) -> str:
    """One stdout line from the subprocess, or fail within ``timeout``."""
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        remaining = deadline - time.monotonic()
        ready, _, _ = select.select([proc.stdout], [], [],
                                    max(0.0, min(remaining, 1.0)))
        if ready:
            line = proc.stdout.readline()
            break
        if proc.poll() is not None:
            break
    if not line:
        raise AssertionError(
            f"server produced no output within {timeout}s"
            f" (exit={proc.poll()}, stderr={proc.stderr.read()[-2000:]})")
    return line.strip()


def benchmark_wire_workload() -> dict:
    """The same workload the CLI flags name, as the HTTP wire object."""
    from repro.benchdata.datagen import generate_database
    from repro.benchdata.tpcds import simple_workload, tpcds_schema
    from repro.hydra.client import extract_constraints
    from repro.server import constraint_set_to_wire

    schema = tpcds_schema(scale_factor=0.0002)
    database = generate_database(schema, seed=7)
    workload = simple_workload(schema, num_queries=3, seed=3)
    return constraint_set_to_wire(
        extract_constraints(database, workload).constraints)


class TestServeListenCLI:
    def test_two_process_warm_serving(self, tmp_path):
        store = str(tmp_path / "store")

        # Process 1: pay the LP solves once.
        warm = run_cli("summarize", "--store", store, *FLAGS)
        assert warm.returncode == 0, warm.stderr
        fingerprint = next(
            line.split("=", 1)[1] for line in warm.stdout.splitlines()
            if line.startswith("fingerprint="))

        # Process 2: the HTTP front-end, ephemeral port, warm-only.
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--store", store,
             *FLAGS, "--listen", "127.0.0.1:0", "--require-warm",
             "--cursor-idle-timeout", "30"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=cli_env(), cwd=REPO)
        try:
            banner = read_line(proc, timeout=240)
            assert f"fingerprint={fingerprint}" in banner
            assert "warm=True" in banner
            url = banner.split()[2]
            assert url.startswith("http://127.0.0.1:")

            with urllib.request.urlopen(url + "/healthz", timeout=30) as r:
                health = json.loads(r.read())
            assert health["status"] == "ok"
            assert health["require_warm"] is True

            # Fingerprint-exactness across processes: this process encodes
            # the same benchmark workload to the wire form and the server
            # resolves it onto process 1's summary, warm.
            body = json.dumps({"workload": benchmark_wire_workload()})
            request = urllib.request.Request(
                url + "/v1/summarize", data=body.encode("utf-8"),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as r:
                summarized = json.loads(r.read())
            assert summarized["warm"] is True
            assert summarized["fingerprint"] == fingerprint

            # Sharded streaming: two shards concatenate to the relation.
            rows = []
            total = None
            for index in (1, 2):
                with urllib.request.urlopen(
                        f"{url}/v1/stream/{fingerprint}/item?shard={index}/2",
                        timeout=60) as r:
                    total = int(r.headers["X-Repro-Total-Rows"])
                    rows.extend(json.loads(line)
                                for line in r.read().splitlines())
            assert total and len(rows) == total
            assert [row["i_item_sk"] for row in rows] == \
                list(range(1, total + 1))

            # Warm path across processes: zero LP solves in the server.
            with urllib.request.urlopen(url + "/metrics", timeout=30) as r:
                metrics = r.read().decode()
            assert "repro_lp_components_solved_total 0" in metrics
            assert "repro_service_warm_hits_total" in metrics

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
            assert "pipeline_runs=0" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)

    def test_require_warm_cold_store_exits_3_before_binding(self, tmp_path):
        cold = run_cli("serve", "--store", str(tmp_path / "empty"), *FLAGS,
                       "--listen", "127.0.0.1:0", "--require-warm")
        assert cold.returncode == EXIT_NOT_WARM
        assert "refusing" in cold.stderr
        assert "listening on" not in cold.stdout

    def test_listen_flag_validation(self, tmp_path):
        bad = run_cli("serve", "--store", str(tmp_path / "s"), *FLAGS,
                      "--listen", "no-port")
        assert bad.returncode != 0

    def test_one_shot_serve_still_requires_relation(self, tmp_path):
        missing = run_cli("serve", "--store", str(tmp_path / "s"), *FLAGS)
        assert missing.returncode == 2
        assert "--relation is required" in missing.stderr
