"""Tests for the regeneration service layer: fingerprints, the persistent
summary store, the concurrent serving front-end and the CLI.

Covers the acceptance criteria of the serving subsystem: a second process
(or a second solver instance) serves a previously-seen workload with zero LP
solver invocations, and concurrent identical cold requests trigger exactly
one pipeline run.
"""

from __future__ import annotations

import gzip
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.constraints.cc import CardinalityConstraint
from repro.lp.model import LPSolution
from repro.constraints.workload import ConstraintSet
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import ServiceError, SummaryStoreError
from repro.hydra.client import extract_constraints
from repro.hydra.pipeline import Hydra, HydraConfig
from repro.predicates.dnf import DNFPredicate, col
from repro.predicates.interval import Interval
from repro.schema.relation import Attribute, ForeignKey, Relation
from repro.schema.schema import Schema
from repro.service.fingerprint import (
    constraint_set_fingerprint,
    schema_fingerprint,
    workload_fingerprint,
)
from repro.service.service import RegenerationService
from repro.service.store import SummaryStore
from repro.summary.relation_summary import DatabaseSummary, RelationSummary
from repro.tuplegen.generator import TupleGenerator, dynamic_database
from repro.workload.query import Query, Workload


def toy_ccs(name: str = "toy-ccs") -> ConstraintSet:
    """A small, fast constraint set over the Figure 1 toy schema."""
    ccs = ConstraintSet(name=name)
    ccs.add(CardinalityConstraint("S", col("A").between(20, 60), 400))
    ccs.add(CardinalityConstraint("S", DNFPredicate.true(), 700))
    ccs.add(CardinalityConstraint("T", col("C") == 2, 900))
    ccs.add(CardinalityConstraint("T", DNFPredicate.true(), 1500))
    ccs.add(CardinalityConstraint("R", DNFPredicate.true(), 80_000))
    return ccs


def entry_path(root: Path, kind: str, key: str) -> Path:
    return root / kind / key[:2] / f"{key}.json.gz"


# ---------------------------------------------------------------------- #
# fingerprints
# ---------------------------------------------------------------------- #
class TestFingerprint:
    def test_constraint_order_does_not_matter(self, toy_schema):
        a = toy_ccs()
        b = ConstraintSet(reversed(list(a)), name="other-name")
        assert constraint_set_fingerprint(a) == constraint_set_fingerprint(b)
        assert workload_fingerprint(toy_schema, a) == workload_fingerprint(toy_schema, b)

    def test_column_declaration_order_does_not_matter(self):
        def build(attr_order, rel_order):
            attrs = {"A": Attribute("A", Interval(0, 100)), "B": Attribute("B", Interval(0, 50))}
            rels = {
                "S": Relation(name="S", primary_key="S_pk", row_count=10,
                              attributes=[attrs[a] for a in attr_order]),
                "T": Relation(name="T", primary_key="T_pk", row_count=20,
                              attributes=[Attribute("C", Interval(0, 10))]),
            }
            return Schema([rels[r] for r in rel_order], name="s")

        base = build("AB", "ST")
        assert schema_fingerprint(base) == schema_fingerprint(build("BA", "TS"))

    def test_conjunct_order_and_query_id_do_not_matter(self, toy_schema):
        p1 = (col("A") < 30).disjoin(col("B") >= 10)
        p2 = (col("B") >= 10).disjoin(col("A") < 30)
        a = ConstraintSet([CardinalityConstraint("S", p1, 5, query_id="q1")])
        b = ConstraintSet([CardinalityConstraint("S", p2, 5, query_id="q2")])
        assert workload_fingerprint(toy_schema, a) == workload_fingerprint(toy_schema, b)

    def test_semantic_changes_do_matter(self, toy_schema):
        base = toy_ccs()
        different_card = ConstraintSet(list(base)[:-1], name="x")
        different_card.add(CardinalityConstraint("R", DNFPredicate.true(), 80_001))
        assert workload_fingerprint(toy_schema, base) != \
            workload_fingerprint(toy_schema, different_card)
        # The regenerated-relation subset is part of the request identity.
        assert workload_fingerprint(toy_schema, base) != \
            workload_fingerprint(toy_schema, base, relations=["S"])


# ---------------------------------------------------------------------- #
# summary serialisation round-trip
# ---------------------------------------------------------------------- #
class TestSummaryRoundTrip:
    def test_relation_summary_json_roundtrip(self):
        summary = RelationSummary(
            relation="S", primary_key="S_pk", columns=("fk", "A"),
            rows=[((1, 20), 400), ((2, 60), 300)],
        )
        text = json.dumps(summary.to_dict())
        assert RelationSummary.from_dict(json.loads(text)) == summary

    def test_database_summary_json_roundtrip(self, toy_schema):
        result = Hydra(toy_schema).build_summary(toy_ccs())
        original = result.summary
        text = json.dumps(original.to_dict())
        restored = DatabaseSummary.from_dict(json.loads(text))
        assert restored.relations == original.relations
        assert restored.extra_tuples == original.extra_tuples
        assert restored.lp_variable_counts == original.lp_variable_counts
        assert restored.total_rows() == original.total_rows()


# ---------------------------------------------------------------------- #
# summary store
# ---------------------------------------------------------------------- #
class TestSummaryStore:
    def test_roundtrip_and_reopen(self, toy_schema, tmp_path):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        store = SummaryStore(tmp_path / "store")
        store.put_summary("f" * 64, summary, meta={"schema": "toy"})
        assert store.store_bytes() > 0

        reopened = SummaryStore(tmp_path / "store")
        restored = reopened.get_summary("f" * 64)
        assert restored is not None
        assert restored.to_dict()["relations"] == summary.to_dict()["relations"]
        assert reopened.summary_fingerprints() == ["f" * 64]
        assert reopened.entries()[0]["schema"] == "toy"

    def test_memory_only_store(self, toy_schema):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        store = SummaryStore(None)
        store.put_summary("a" * 64, summary)
        assert store.get_summary("a" * 64) is summary
        # Memory-only occupancy is reported, not left at the disk counters' 0.
        assert store.store_bytes() == summary.nbytes() > 0
        assert store.get_summary("b" * 64) is None

    def test_memory_only_counters_report_components(self, toy_schema):
        # Regression: memory-only mode used to fix up only `summaries` and
        # leave `components`/`store_bytes` at the disk counters' 0.
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        store = SummaryStore(None)
        store.put_summary("a" * 64, summary)
        solution = LPSolution(values=np.array([1, 2, 3], dtype=np.int64),
                              feasible=True, method="test",
                              max_violation=0.0, solve_seconds=0.0)
        store.put_component("c" * 64, solution)
        counters = store.counters()
        assert counters["summaries"] == 1
        assert counters["components"] == 1
        assert counters["store_bytes"] > 0
        restored = store.get_component("c" * 64)
        assert restored is not None
        assert list(restored.values) == [1, 2, 3]

    def test_disk_counters_report_both_kinds(self, toy_schema, tmp_path):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        store = SummaryStore(tmp_path / "store")
        store.put_summary("a" * 64, summary)
        solution = LPSolution(values=np.array([4, 5], dtype=np.int64),
                              feasible=True, method="test",
                              max_violation=0.0, solve_seconds=0.0)
        store.put_component("c" * 64, solution)
        counters = store.counters()
        assert counters["summaries"] == 1 and counters["components"] == 1
        # The running counters match an authoritative rescan exactly.
        assert counters["store_bytes"] == \
            SummaryStore(tmp_path / "store").counters()["store_bytes"]

    def test_put_twice_does_not_double_count(self, toy_schema, tmp_path):
        # Regression: overwriting an entry goes through os.replace; the
        # running byte counter must subtract the replaced file's size and
        # the entry counter must not grow.
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        store = SummaryStore(tmp_path / "store")
        store.put_summary("f" * 64, summary, meta={"pass": 1})
        first = store.counters()
        store.put_summary("f" * 64, summary, meta={"pass": 2})
        store.put_component("c" * 64, LPSolution(
            values=np.array([1], dtype=np.int64), feasible=True,
            method="test", max_violation=0.0, solve_seconds=0.0))
        store.put_component("c" * 64, LPSolution(
            values=np.array([1], dtype=np.int64), feasible=True,
            method="test", max_violation=0.0, solve_seconds=0.0))
        counters = store.counters()
        assert counters["summaries"] == first["summaries"] == 1
        assert counters["components"] == 1
        fresh = SummaryStore(tmp_path / "store").counters()
        assert counters["summaries"] == fresh["summaries"]
        assert counters["components"] == fresh["components"]
        assert counters["store_bytes"] == fresh["store_bytes"]

    def test_corrupted_entry_rejected_cleanly(self, toy_schema, tmp_path):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        root = tmp_path / "store"
        fingerprint = "c" * 64
        SummaryStore(root).put_summary(fingerprint, summary)

        path = entry_path(root, "summaries", fingerprint)
        path.write_bytes(b"this is not gzip")
        fresh = SummaryStore(root)
        with pytest.raises(SummaryStoreError, match="corrupted or partially"):
            fresh.read_summary(fingerprint)
        # The serving path degrades to a miss and counts the corruption.
        assert fresh.get_summary(fingerprint) is None
        assert fresh.stats["corrupt_entries"] == 1

    def test_partial_entry_rejected_cleanly(self, toy_schema, tmp_path):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        root = tmp_path / "store"
        fingerprint = "d" * 64
        SummaryStore(root).put_summary(fingerprint, summary)

        path = entry_path(root, "summaries", fingerprint)
        path.write_bytes(path.read_bytes()[:10])  # truncated write
        with pytest.raises(SummaryStoreError):
            SummaryStore(root).read_summary(fingerprint)

    def test_wrong_payload_key_rejected(self, tmp_path):
        root = tmp_path / "store"
        SummaryStore(root)
        fingerprint = "e" * 64
        path = entry_path(root, "summaries", fingerprint)
        path.parent.mkdir(parents=True)
        path.write_bytes(gzip.compress(json.dumps(
            {"format": 1, "key": "mismatch", "summary": {}}
        ).encode()))
        with pytest.raises(SummaryStoreError, match="payload shape"):
            SummaryStore(root).read_summary(fingerprint)

    def test_unknown_format_version_rejected(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "store.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(SummaryStoreError, match="format 99"):
            SummaryStore(root)

    def test_missing_entry_raises_on_strict_read(self, tmp_path):
        with pytest.raises(SummaryStoreError, match="no summaries entry"):
            SummaryStore(tmp_path / "store").read_summary("0" * 64)


# ---------------------------------------------------------------------- #
# pipeline integration: warm builds skip all solves
# ---------------------------------------------------------------------- #
class TestPipelineStoreIntegration:
    def test_second_solver_instance_serves_with_zero_lp_solves(self, toy_schema, tmp_path):
        ccs = toy_ccs()
        first = Hydra(toy_schema, store=SummaryStore(tmp_path / "store"))
        cold = first.build_summary(ccs)
        assert cold.solver_stats["components_solved"] > 0
        assert cold.solver_stats["summary_store_hits"] == 0

        # Fresh Hydra + fresh store object over the same directory models a
        # second worker process mounting the shared store.
        second = Hydra(toy_schema, store=SummaryStore(tmp_path / "store"))
        warm = second.build_summary(ccs)
        assert second.solver.stats.components_solved == 0
        assert warm.solver_stats["summary_store_hits"] == 1
        assert warm.cache_counters()["store_bytes"] > 0
        assert warm.summary.to_dict() == cold.summary.to_dict()

    def test_store_isolates_differently_configured_pipelines(self, toy_schema, tmp_path):
        """A shared store must never serve a continuous-config pipeline's
        artefacts (summary or component solutions) to an exact-MILP one."""
        ccs = toy_ccs()
        relaxed = Hydra(toy_schema, HydraConfig(prefer_integer=False),
                        store=SummaryStore(tmp_path / "store"))
        relaxed.build_summary(ccs)

        exact = Hydra(toy_schema, HydraConfig(prefer_integer=True),
                      store=SummaryStore(tmp_path / "store"))
        assert exact.request_fingerprint(ccs) != relaxed.request_fingerprint(ccs)
        result = exact.build_summary(ccs)
        # Neither the summary fast path nor the component cache crossed over.
        assert result.solver_stats["summary_store_hits"] == 0
        assert result.solver_stats["cache_hits"] == 0
        assert exact.solver.stats.components_solved > 0

        # Same configuration in a fresh instance still shares everything.
        twin = Hydra(toy_schema, HydraConfig(prefer_integer=True),
                     store=SummaryStore(tmp_path / "store"))
        assert twin.build_summary(ccs).solver_stats["summary_store_hits"] == 1

    def test_component_cache_shared_across_processes(self, toy_schema, tmp_path):
        ccs = toy_ccs()
        first = Hydra(toy_schema, store=SummaryStore(tmp_path / "store"))
        first.build_summary(ccs)

        # A *different* workload fingerprint (extra regenerated relation set)
        # over the same constraints: the summary fast path misses, but every
        # LP component solution is served from the persisted component cache.
        second = Hydra(toy_schema, store=SummaryStore(tmp_path / "store"))
        result = second.build_summary(ccs, relations=["S", "T", "R"])
        assert result.solver_stats["summary_store_hits"] == 0
        assert second.solver.stats.components_solved == 0
        assert result.solver_stats["cache_hits"] > 0


# ---------------------------------------------------------------------- #
# regeneration service
# ---------------------------------------------------------------------- #
class TestRegenerationService:
    def test_warm_requests_never_touch_the_solver(self, toy_schema, tmp_path):
        ccs = toy_ccs()
        with RegenerationService(toy_schema, store=tmp_path / "store") as warmer:
            warmer.summarize(ccs)

        with RegenerationService(toy_schema, store=tmp_path / "store") as service:
            ticket = service.submit(ccs)
            assert ticket.warm and ticket.done()
            summary = ticket.result()
            assert summary.relation("R").total_rows() == 80_000
            rows = sum(b.num_rows for b in service.stream(ccs, "R", batch_size=9_000))
            assert rows == 80_000
            stats = service.stats()
            assert stats["pipeline_runs"] == 0
            assert stats["solver_components_solved"] == 0
            assert stats["hits"] == 2 and stats["misses"] == 0
            assert stats["store_bytes"] > 0

    def test_concurrent_identical_cold_requests_single_flight(self, toy_schema, tmp_path):
        service = RegenerationService(toy_schema, store=tmp_path / "store")
        inner = service.hydra.build_summary

        def slow_build(*args, **kwargs):
            time.sleep(0.25)
            return inner(*args, **kwargs)

        service.hydra.build_summary = slow_build  # type: ignore[method-assign]
        ccs = toy_ccs()
        barrier = threading.Barrier(6)
        summaries = []

        def request():
            barrier.wait()
            summaries.append(service.summarize(ccs, timeout=30.0))

        threads = [threading.Thread(target=request) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stats = service.stats()
        assert stats["pipeline_runs"] == 1
        assert stats["misses"] == 1
        assert stats["inflight_dedup"] == 5
        assert len({id(s) for s in summaries}) == 1
        service.close()

    def test_concurrent_consumers_stream_disjoint_shards(self, toy_schema, tmp_path):
        ccs = toy_ccs()
        with RegenerationService(toy_schema, store=tmp_path / "store") as service:
            fingerprint = service.submit(ccs).fingerprint
            service.summarize(ccs)
            solves_after_warmup = service.stats()["solver_components_solved"]
            shard_rows = {}

            def consume(start, stop):
                rows = 0
                for batch in service.stream(fingerprint, "R", batch_size=7_000,
                                            start_row=start, stop_row=stop):
                    rows += batch.num_rows
                shard_rows[(start, stop)] = rows

            threads = [
                threading.Thread(target=consume, args=(1, 40_000)),
                threading.Thread(target=consume, args=(40_001, 80_000)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert shard_rows == {(1, 40_000): 40_000, (40_001, 80_000): 40_000}
            # Streaming is pure generation: no further LP solves.
            assert service.stats()["solver_components_solved"] == solves_after_warmup

    def test_unknown_fingerprint_is_store_only(self, toy_schema, tmp_path):
        with RegenerationService(toy_schema, store=tmp_path / "store") as service:
            with pytest.raises(ServiceError, match="no stored summary"):
                # Raises at the call site, not at first iteration.
                service.stream("9" * 64, "R")

    def test_build_errors_propagate_to_every_waiter(self, toy_schema, tmp_path):
        service = RegenerationService(toy_schema, store=tmp_path / "store")

        def failing_build(*args, **kwargs):
            raise RuntimeError("boom")

        service.hydra.build_summary = failing_build  # type: ignore[method-assign]
        ticket = service.submit(toy_ccs())
        with pytest.raises(RuntimeError, match="boom"):
            ticket.result(timeout=10.0)
        service.close()


# ---------------------------------------------------------------------- #
# tuple generator shard handles
# ---------------------------------------------------------------------- #
class TestStreamRange:
    def test_shards_concatenate_to_full_stream(self, toy_schema):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        generator = TupleGenerator(summary.relation("R"))
        full = generator.table_from_stream(batch_size=6_000)
        left = list(generator.stream_range(1, 30_000, batch_size=6_000))
        right = list(generator.stream_range(30_001, None, batch_size=6_000))
        stitched = Table.concat(left + right, name="R")
        assert stitched.num_rows == full.num_rows == 80_000
        pk = stitched.column("R_pk")
        assert pk[0] == 1 and pk[-1] == 80_000

    def test_out_of_bounds_shard_rejected(self, toy_schema):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        generator = TupleGenerator(summary.relation("R"))
        from repro.errors import GenerationError

        with pytest.raises(GenerationError, match="out of bounds"):
            list(generator.stream_range(0, 10))
        with pytest.raises(GenerationError, match="out of bounds"):
            list(generator.stream_range(1, 80_001))


# ---------------------------------------------------------------------- #
# client row-count collection over lazy relations
# ---------------------------------------------------------------------- #
class TestClientRowCounts:
    def test_row_counts_do_not_materialise_streams(self, toy_schema):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        database = dynamic_database(summary, toy_schema, batch_size=10_000)
        counts = database.row_counts()
        assert counts["R"] == 80_000 and counts["S"] == 700 and counts["T"] == 1500
        # Counting never cached a full table — and never even generated one:
        # dynamic_database declares the generators' totals at attach time.
        assert all(database.is_dynamic(rel) for rel in ("R", "S", "T"))

    def test_declared_stream_row_count_answers_without_generation(self, toy_schema):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        database = Database(toy_schema, name="declared")
        pulls = {"n": 0}

        def factory():
            pulls["n"] += 1
            return TupleGenerator(summary.relation("R")).stream(batch_size=10_000)

        database.attach_stream("R", factory, row_count=80_000)
        assert database.row_count("R") == 80_000
        assert pulls["n"] == 0  # a declared count costs zero generation
        # Without a declared count the stream is consumed (but not cached).
        database.attach_stream("R", factory)
        assert database.row_count("R") == 80_000
        assert pulls["n"] == 1 and database.is_dynamic("R")

    def test_extract_constraints_covers_stream_attached_relations(self, toy_schema):
        summary = Hydra(toy_schema).build_summary(toy_ccs()).summary
        database = dynamic_database(summary, toy_schema, name="toy-lazy")
        workload = Workload(name="w", queries=[
            Query(query_id="q1", root="R", relations=("R", "S"),
                  filters={"S": col("A").between(20, 60)}),
        ])
        package = extract_constraints(database, workload)
        assert package.row_counts["R"] == 80_000
        assert package.row_counts["S"] == 700
        assert "T" not in package.row_counts  # not referenced by the workload


# ---------------------------------------------------------------------- #
# CLI: warm in one process, serve from a second process
# ---------------------------------------------------------------------- #
class TestServiceCLI:
    @staticmethod
    def run_cli(*argv: str) -> "subprocess.CompletedProcess[str]":
        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.service", *argv],
            capture_output=True, text=True, env=env, cwd=repo, timeout=300,
        )

    def test_second_process_serves_with_zero_pipeline_runs(self, tmp_path):
        store = str(tmp_path / "store")
        flags = ["--store", store, "--scale", "0.0002", "--queries", "5"]

        warm = self.run_cli("warm", *flags)
        assert warm.returncode == 0, warm.stderr
        assert "pipeline_runs=1" in warm.stdout

        serve = self.run_cli("serve", *flags, "--relation", "store_sales",
                             "--max-batches", "2", "--require-warm")
        assert serve.returncode == 0, serve.stderr
        assert "warm=True" in serve.stdout
        assert "pipeline_runs=0" in serve.stdout
        assert "solver_components_solved=0" in serve.stdout

        inspect = self.run_cli("inspect", "--store", store)
        assert inspect.returncode == 0 and "summaries=1" in inspect.stdout

    def test_serve_refuses_cold_request_when_warm_required(self, tmp_path):
        result = self.run_cli(
            "serve", "--store", str(tmp_path / "empty"), "--scale", "0.0002",
            "--queries", "5", "--relation", "store_sales", "--require-warm",
        )
        assert result.returncode == 3
        assert "refusing" in result.stderr


# ---------------------------------------------------------------------- #
# regenerate-then-verify: pipelined execution over regenerated databases
# ---------------------------------------------------------------------- #
class TestRegenerateThenVerify:
    def _workload(self) -> Workload:
        return Workload(name="verify", queries=[
            Query(query_id="q1", root="R", relations=("R", "S", "T"),
                  filters={"S": col("A").between(20, 60)}),
            Query(query_id="q2", root="R", relations=("R", "S")),
        ])

    def test_execute_workload_over_regenerated_database(self, toy_schema,
                                                        monkeypatch):
        # The fact relation streams through the executor batch-at-a-time:
        # a one-shot materialisation anywhere is a test failure.
        def forbidden(self):
            raise AssertionError("serving path called materialize()")

        with RegenerationService(toy_schema) as service:
            service.summarize(toy_ccs())  # warm the store first
            monkeypatch.setattr(TupleGenerator, "materialize", forbidden)
            plans = service.execute_workload(toy_ccs(), self._workload(),
                                             batch_size=10_000)
            assert [p.query_id for p in plans] == ["q1", "q2"]
            assert plans[1].output_cardinality() == 80_000
            stats = service.stats()
            assert stats["workloads_executed"] == 1
            assert stats["executor_batches"] > 0
            assert 0 < stats["executor_peak_batch_rows"] <= 10_000

    def test_verify_defaults_to_request_constraints(self, toy_schema):
        with RegenerationService(toy_schema) as service:
            report = service.verify(toy_ccs())
            assert len(report.results) == len(list(toy_ccs()))
            assert report.max_error() < 0.02
            stats = service.stats()
            assert stats["verifications"] == 1
            assert stats["executor_peak_batch_rows"] > 0

    def test_verify_by_fingerprint_requires_constraints(self, toy_schema):
        with RegenerationService(toy_schema) as service:
            ticket = service.submit(toy_ccs())
            ticket.result()
            with pytest.raises(ServiceError, match="explicit constraint set"):
                service.verify(ticket.fingerprint)
            # ... but works once the constraints are supplied.
            report = service.verify(ticket.fingerprint, constraints=toy_ccs())
            assert report.max_error() < 0.02

    def test_database_is_lazy(self, toy_schema):
        with RegenerationService(toy_schema) as service:
            database = service.database(toy_ccs(), batch_size=10_000)
            assert all(database.is_dynamic(rel) for rel in ("R", "S", "T"))
            assert database.row_count("R") == 80_000
