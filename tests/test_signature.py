"""Tests for the signature-based partitioner: it must produce exactly the
same labelled regions as the box-geometry reference implementation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import PartitionBudgetError
from repro.partition.region import optimal_partition
from repro.partition.signature import (
    partition_variables,
    shared_segments_from_constraints,
)
from repro.predicates.interval import Interval
from tests.test_partition import random_constraints


class TestSignaturePartitioning:
    def test_person_example_variables(self, person_domains, person_constraints):
        variables = partition_variables(
            ("age", "salary"), person_domains, person_constraints,
            constraint_indices=[0, 1, 2], shared_segments={},
        )
        assert len(variables) == 4
        labels = {v.label for v in variables}
        assert labels == {
            frozenset({0, 2}), frozenset({0, 1, 2}), frozenset({1, 2}), frozenset({2}),
        }
        # every representative corner satisfies exactly its label
        for variable in variables:
            corner = variable.representative()
            for index, constraint in enumerate(person_constraints):
                assert constraint.predicate.evaluate(corner) == (index in variable.label)

    def test_shared_segment_refinement_splits_variables(self, person_domains, person_constraints):
        segments = shared_segments_from_constraints(
            "age", person_domains["age"], person_constraints
        )
        variables = partition_variables(
            ("age", "salary"), person_domains, person_constraints,
            constraint_indices=[0, 1, 2], shared_segments={"age": segments},
        )
        # refinement along age can only increase the variable count
        assert len(variables) >= 4
        for variable in variables:
            assert dict(variable.shared_cell).keys() == {"age"}

    def test_budget_abort(self, person_domains, person_constraints):
        segments = shared_segments_from_constraints(
            "age", person_domains["age"], person_constraints
        )
        with pytest.raises(PartitionBudgetError):
            partition_variables(
                ("age", "salary"), person_domains, person_constraints,
                constraint_indices=[0, 1, 2], shared_segments={"age": segments},
                max_states=2,
            )

    def test_only_size_constraint(self, person_domains, person_constraints):
        size_only = [person_constraints[2]]
        variables = partition_variables(
            ("age",), person_domains, size_only, [0], {},
        )
        assert len(variables) == 1
        assert variables[0].label == frozenset({0})


@given(random_constraints())
@settings(max_examples=60, deadline=None)
def test_signature_labels_match_box_geometry(data):
    attrs, domains, constraints = data
    regions = optimal_partition(attrs, domains, constraints)
    variables = partition_variables(attrs, domains, constraints,
                                    list(range(len(constraints))), {})
    assert {r.label for r in regions} == {v.label for v in variables}
    assert len(regions) == len(variables)
