"""Conformance suite of the :class:`repro.cluster.StoreBackend` protocol.

Every backend shape the serving layers can mount — the plain disk store,
the memory-only store, a leader-attached :class:`ReplicatedStore` and a
:class:`ShardedStore` over two disk shards — must satisfy the same
observable contract: summary/component round-trips, listings, deletion,
pin/compact interplay, counters and corruption rejection.  The suite is
parametrized so a new backend only needs a fixture branch to inherit the
whole contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    DiskBackend,
    ReplicatedStore,
    ShardedStore,
    StoreBackend,
    StoreServer,
)
from repro.errors import SummaryStoreError
from repro.lp.model import LPSolution
from repro.service.store import SummaryStore
from repro.summary.relation_summary import DatabaseSummary, RelationSummary

BACKENDS = ("disk", "memory", "replicated", "sharded")


def make_summary(rows: int = 100, values: int = 4) -> DatabaseSummary:
    """A small synthetic one-relation summary (regenerates ``rows`` rows)."""
    summary = DatabaseSummary()
    per_row = max(1, rows // values)
    summary.relations["S"] = RelationSummary(
        relation="S", primary_key="S_pk", columns=("A",),
        rows=[((i,), per_row) for i in range(values)],
    )
    return summary


def make_solution(n: int = 3) -> LPSolution:
    return LPSolution(values=np.arange(1, n + 1, dtype=np.int64),
                      feasible=True, method="test")


def fp(seed: str) -> str:
    """A syntactically valid 64-hex fingerprint derived from ``seed``."""
    import hashlib

    return hashlib.sha256(seed.encode()).hexdigest()


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    """One StoreBackend implementation per param, torn down cleanly."""
    if request.param == "disk":
        store = DiskBackend(tmp_path / "disk")
        yield store
        return
    if request.param == "memory":
        yield SummaryStore(None)
        return
    if request.param == "replicated":
        leader = DiskBackend(tmp_path / "leader")
        server = StoreServer(leader, port=0).start()
        replica = ReplicatedStore(server.url, tmp_path / "replica",
                                  poll_interval=0.05)
        yield replica
        replica.close()
        server.shutdown()
        return
    shards = {
        "a": DiskBackend(tmp_path / "shard-a"),
        "b": DiskBackend(tmp_path / "shard-b"),
    }
    yield ShardedStore(shards)


class TestConformance:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, StoreBackend)

    def test_summary_round_trip(self, backend):
        key = fp("round-trip")
        summary = make_summary(rows=60)
        assert backend.get_summary(key) is None
        assert not backend.has_summary(key)
        backend.put_summary(key, summary, meta={"engine": "test"})
        assert backend.has_summary(key)
        fetched = backend.get_summary(key)
        assert fetched is not None
        assert fetched.total_rows() == summary.total_rows()
        if isinstance(backend, SummaryStore) and backend.root is None:
            # Pre-existing contract: strict reads need entry files, so the
            # memory-only store refuses rather than faking durability.
            with pytest.raises(SummaryStoreError):
                backend.read_summary(key)
        else:
            assert (backend.read_summary(key).total_rows()
                    == summary.total_rows())
        assert key in backend.summary_fingerprints()
        entries = backend.entries()
        assert any(entry["fingerprint"] == key for entry in entries)

    def test_component_round_trip(self, backend):
        key = fp("component") + "-abc"
        assert backend.get_component(key) is None
        backend.put_component(key, make_solution())
        fetched = backend.get_component(key)
        assert fetched is not None
        assert fetched.feasible
        assert list(fetched.values) == [1, 2, 3]
        assert key in backend.component_keys()

    def test_delete_entry(self, backend):
        key = fp("deleted")
        backend.put_summary(key, make_summary())
        assert backend.delete_entry("summaries", key) is True
        assert backend.delete_entry("summaries", key) is False
        assert not backend.has_summary(key)
        assert key not in backend.summary_fingerprints()

    def test_pin_protects_from_compact(self, backend):
        pinned, victim = fp("pinned"), fp("victim")
        backend.put_summary(pinned, make_summary())
        backend.put_summary(victim, make_summary())
        with backend.pinned(pinned):
            assert backend.pin_count(pinned) == 1
            backend.compact(max_entries=0)
            assert backend.has_summary(pinned)
            assert not backend.has_summary(victim)
        assert backend.pin_count(pinned) == 0

    def test_counters_and_stats(self, backend):
        key = fp("counted")
        backend.put_summary(key, make_summary())
        backend.get_summary(key)
        backend.get_summary(fp("absent"))
        counters = backend.counters()
        for name in ("summaries", "components", "store_bytes",
                     "summary_hits", "summary_misses", "corrupt_entries"):
            assert name in counters, name
            assert counters[name] >= 0
        assert counters["summaries"] >= 1
        assert backend.store_bytes() == counters["store_bytes"]
        # `stats` is the legacy five-counter view — a subset of counters().
        for name, value in backend.stats.items():
            assert counters[name] == value, name

    def test_corrupt_payload_rejected(self, backend):
        key = fp("corrupt")
        with pytest.raises(SummaryStoreError):
            backend.apply_entry("summaries", key, {"format": 99})
        with pytest.raises(SummaryStoreError):
            backend.apply_entry("summaries", key, "not a mapping")
        assert not backend.has_summary(key)

    def test_solution_cache_shares_backend(self, backend):
        cache = backend.solution_cache(memory_size=4)
        key = fp("cache") + "-sig"
        assert cache.get(key) is None
        cache.put(key, make_solution(2))
        assert cache.get(key) is not None
        assert key in backend.component_keys()


class TestDiskSpecific:
    def test_corrupt_file_counted_not_fatal(self, tmp_path):
        store = DiskBackend(tmp_path / "store")
        key = fp("gz")
        store.put_summary(key, make_summary())
        path = next((tmp_path / "store" / "summaries").rglob("*.json.gz"))
        path.write_bytes(b"not gzip at all")
        fresh = DiskBackend(tmp_path / "store")
        assert fresh.get_summary(key) is None
        assert fresh.counters()["corrupt_entries"] >= 1

    def test_disk_backend_is_summary_store(self, tmp_path):
        """The refactor is invisible: DiskBackend *is* the disk store, and
        a directory written by one opens unchanged under the other."""
        old = SummaryStore(tmp_path / "store")
        key = fp("compat")
        old.put_summary(key, make_summary())
        assert isinstance(DiskBackend(tmp_path / "store").get_summary(key),
                          DatabaseSummary)
        assert issubclass(DiskBackend, SummaryStore)


class TestShardedSpecific:
    def test_routing_is_deterministic_and_total(self, tmp_path):
        shards = {name: SummaryStore(None) for name in ("a", "b", "c")}
        store = ShardedStore(shards)
        keys = [fp(f"k{i}") for i in range(30)]
        owners = {key: store.shard_for(key) for key in keys}
        assert set(owners.values()) <= set(shards)
        for key in keys:
            store.put_summary(key, make_summary())
        # every key landed on exactly the shard the ring names
        for key, owner in owners.items():
            assert shards[owner].has_summary(key)
            assert store.has_summary(key)
        assert sorted(owners) == store.summary_fingerprints()
        by_shard = {entry["fingerprint"]: entry["shard"]
                    for entry in store.entries()}
        assert by_shard == owners

    def test_fanout_counters_sum(self, tmp_path):
        shards = {"a": SummaryStore(None), "b": SummaryStore(None)}
        store = ShardedStore(shards)
        for i in range(8):
            store.put_summary(fp(f"s{i}"), make_summary())
        assert store.counters()["summaries"] == 8
        assert store.counters()["summaries"] == sum(
            s.counters()["summaries"] for s in shards.values())
