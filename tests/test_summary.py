"""Tests for the summary generator: align/merge, view summaries, referential
consistency, relation summaries and serialisation."""

from __future__ import annotations

import pytest

from repro.constraints.cc import CardinalityConstraint
from repro.errors import SummaryError
from repro.predicates.dnf import DNFPredicate, col
from repro.predicates.interval import Interval
from repro.schema.schema import Schema
from repro.summary.align import merge_subview_solutions
from repro.summary.consistency import enforce_referential_consistency
from repro.summary.relation_summary import (
    DatabaseSummary,
    RelationSummary,
    build_relation_summary,
)
from repro.summary.solution import SolutionRow, SubViewSolution
from repro.summary.view_summary import ViewSummary, instantiate_view_summary
from repro.views.viewdef import ViewSet


def _row(intervals, count, cells=None):
    return SolutionRow(
        intervals={a: Interval(lo, hi) for a, (lo, hi) in intervals.items()},
        count=count,
        cells=cells or {a: lo for a, (lo, hi) in intervals.items()},
    )


class TestAlignAndMerge:
    def test_figure8_style_merge(self):
        """Mirror of the paper's Figure 8: two sub-views sharing attribute A."""
        ab = SubViewSolution(attributes=("A", "B"), rows=[
            _row({"A": (0, 40), "B": (0, 5)}, 20_000, cells={"A": 0}),
            _row({"A": (40, 60), "B": (0, 5)}, 10_000, cells={"A": 1}),
            _row({"A": (40, 60), "B": (5, 10)}, 20_000, cells={"A": 1}),
            _row({"A": (60, 100), "B": (5, 10)}, 30_000, cells={"A": 2}),
        ])
        ac = SubViewSolution(attributes=("A", "C"), rows=[
            _row({"A": (0, 40), "C": (2, 3)}, 5_000, cells={"A": 0}),
            _row({"A": (0, 40), "C": (3, 10)}, 15_000, cells={"A": 0}),
            _row({"A": (40, 60), "C": (2, 3)}, 30_000, cells={"A": 1}),
            _row({"A": (60, 100), "C": (3, 10)}, 30_000, cells={"A": 2}),
        ])
        merged = merge_subview_solutions("R", [ab, ac], order=[0, 1],
                                         aligned_attributes=["A"])
        assert set(merged.attributes) == {"A", "B", "C"}
        assert merged.total() == 80_000
        # marginals over A are preserved
        per_a = {}
        for row in merged.rows:
            per_a[row.intervals["A"].lo] = per_a.get(row.intervals["A"].lo, 0) + row.count
        assert per_a == {0: 20_000, 40: 30_000, 60: 30_000}
        # marginals over C are preserved as well (sub-view distribution kept)
        per_c = {}
        for row in merged.rows:
            per_c[row.intervals["C"].lo] = per_c.get(row.intervals["C"].lo, 0) + row.count
        assert per_c == {2: 35_000, 3: 45_000}

    def test_merge_without_common_attributes(self):
        left = SubViewSolution(attributes=("A",), rows=[_row({"A": (0, 10)}, 100)])
        right = SubViewSolution(attributes=("B",), rows=[
            _row({"B": (0, 5)}, 60), _row({"B": (5, 9)}, 40),
        ])
        merged = merge_subview_solutions("R", [left, right], order=[0, 1])
        assert merged.total() == 100
        assert set(merged.attributes) == {"A", "B"}

    def test_leftover_tuples_are_not_dropped(self):
        # deliberately mismatched totals (only possible with rounded LPs)
        left = SubViewSolution(attributes=("A",), rows=[_row({"A": (0, 10)}, 100)])
        right = SubViewSolution(attributes=("A", "B"), rows=[
            _row({"A": (0, 10), "B": (0, 5)}, 90),
        ])
        merged = merge_subview_solutions("R", [left, right], order=[0, 1],
                                         aligned_attributes=["A"])
        assert merged.total() == 100

    def test_single_subview(self):
        only = SubViewSolution(attributes=("A",), rows=[_row({"A": (3, 10)}, 7)])
        merged = merge_subview_solutions("R", [only], order=[0])
        assert merged.total() == 7
        assert merged.rows[0].intervals["A"].lo == 3


class TestViewSummary:
    def test_instantiation_uses_left_boundaries(self, toy_schema):
        views = ViewSet(toy_schema)
        solution = merge_subview_solutions("R", [
            SubViewSolution(attributes=("A", "C"), rows=[
                _row({"A": (20, 60), "C": (2, 3)}, 30_000),
                _row({"A": (20, 60), "C": (3, 10)}, 20_000),
                _row({"A": (60, 100), "C": (0, 10)}, 30_000),
            ]),
        ], order=[0])
        summary = instantiate_view_summary(views.view("R"), solution, 80_000)
        assert summary.total() == 80_000
        # B is unconstrained -> filled with its domain minimum
        b_index = summary.attribute_index("B")
        assert all(values[b_index] == 0 for values, _ in summary.rows)
        a_index = summary.attribute_index("A")
        assert {values[a_index] for values, _ in summary.rows} == {20, 60}

    def test_unconstrained_view_gets_single_row(self, toy_schema):
        views = ViewSet(toy_schema)
        summary = instantiate_view_summary(views.view("T"), None, 1500)
        assert len(summary) == 1
        assert summary.total() == 1500

    def test_duplicate_value_combinations_merge(self, toy_schema):
        views = ViewSet(toy_schema)
        solution = merge_subview_solutions("T", [
            SubViewSolution(attributes=("C",), rows=[
                _row({"C": (2, 3)}, 10), _row({"C": (2, 5)}, 5),
            ]),
        ], order=[0])
        summary = instantiate_view_summary(views.view("T"), solution, 15)
        assert len(summary) == 1
        assert summary.rows[0][1] == 15


class TestReferentialConsistency:
    def _summaries(self, toy_schema):
        views = ViewSet(toy_schema)
        r = ViewSummary(relation="R", attributes=views.view("R").attributes)
        # R uses combination (A=20, B=0, C=2) and (A=60, B=0, C=0)
        r.add_row(tuple({"A": 20, "B": 0, "C": 2}[a] for a in r.attributes), 50_000)
        r.add_row(tuple({"A": 60, "B": 0, "C": 0}[a] for a in r.attributes), 30_000)
        s = ViewSummary(relation="S", attributes=views.view("S").attributes)
        s.add_row(tuple({"A": 20, "B": 0}[a] for a in s.attributes), 700)
        t = ViewSummary(relation="T", attributes=views.view("T").attributes)
        t.add_row((2,), 1500)
        return views, {"R": r, "S": s, "T": t}

    def test_missing_combinations_added_with_count_one(self, toy_schema):
        views, summaries = self._summaries(toy_schema)
        report = enforce_referential_consistency(summaries, views, toy_schema)
        # S misses (A=60, B=0) and T misses (C=0)
        assert report.extra_tuples["S"] == 1
        assert report.extra_tuples["T"] == 1
        assert report.extra_tuples["R"] == 0
        assert report.total() == 2
        assert summaries["S"].total() == 701
        assert summaries["T"].total() == 1501

    def test_relation_summary_foreign_keys_point_to_matching_blocks(self, toy_schema):
        views, summaries = self._summaries(toy_schema)
        enforce_referential_consistency(summaries, views, toy_schema)
        r_summary = build_relation_summary("R", summaries, views, toy_schema)
        assert r_summary.total_rows() == 80_000
        s_fk = r_summary.column_index("S_fk")
        t_fk = r_summary.column_index("T_fk")
        first_row_values, _ = r_summary.rows[0]
        # (A=20,B=0) is the first S block covering pks 1..700 -> fk = 700
        assert first_row_values[s_fk] == 700
        # (C=2) is the first T block covering pks 1..1500 -> fk = 1500
        assert first_row_values[t_fk] == 1500
        second_row_values, _ = r_summary.rows[1]
        # (A=60,B=0) was added as the 701st S tuple
        assert second_row_values[s_fk] == 701

    def test_missing_parent_summary_raises(self, toy_schema):
        views, summaries = self._summaries(toy_schema)
        del summaries["T"]
        with pytest.raises(SummaryError):
            build_relation_summary("R", summaries, views, toy_schema)


class TestDatabaseSummarySerialisation:
    def test_roundtrip(self, tmp_path):
        summary = DatabaseSummary(
            relations={
                "r": RelationSummary(relation="r", primary_key="pk", columns=("a", "b"),
                                     rows=[((1, 2), 10), ((3, 4), 5)]),
            },
            extra_tuples={"r": 1},
            lp_variable_counts={"r": 4},
            timings={"total_seconds": 0.5},
        )
        path = tmp_path / "summary.json"
        summary.save(path)
        loaded = DatabaseSummary.load(path)
        assert loaded.relation("r").rows == [((1, 2), 10), ((3, 4), 5)]
        assert loaded.extra_tuples == {"r": 1}
        assert loaded.total_rows() == 15
        assert loaded.nbytes() > 0

    def test_unknown_relation(self):
        with pytest.raises(SummaryError):
            DatabaseSummary().relation("missing")
