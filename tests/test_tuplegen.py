"""Tests for the tuple generator (Section 6) and dynamic databases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GenerationError
from repro.summary.relation_summary import DatabaseSummary, RelationSummary
from repro.tuplegen.generator import TupleGenerator, dynamic_database, materialize_database


@pytest.fixture
def sample_summary():
    return RelationSummary(
        relation="S", primary_key="S_pk", columns=("A", "B"),
        rows=[((20, 15), 250), ((40, 7), 100), ((90, 1), 350)],
    )


class TestTupleGenerator:
    def test_total_rows(self, sample_summary):
        assert TupleGenerator(sample_summary).total_rows == 700

    def test_row_lookup_matches_paper_example(self, sample_summary):
        """The 120th row of S in Figure 5 is <120, 20, 15>."""
        generator = TupleGenerator(sample_summary)
        assert generator.row(120) == {"S_pk": 120, "A": 20, "B": 15}
        assert generator.row(250) == {"S_pk": 250, "A": 20, "B": 15}
        assert generator.row(251) == {"S_pk": 251, "A": 40, "B": 7}
        assert generator.row(700) == {"S_pk": 700, "A": 90, "B": 1}

    def test_row_out_of_range(self, sample_summary):
        generator = TupleGenerator(sample_summary)
        with pytest.raises(GenerationError):
            generator.row(0)
        with pytest.raises(GenerationError):
            generator.row(701)

    def test_materialize_matches_row_lookup(self, sample_summary):
        generator = TupleGenerator(sample_summary)
        table = generator.materialize()
        assert table.num_rows == 700
        assert table.row(119) == generator.row(120)
        counts = np.bincount(table.column("A"), minlength=100)
        assert counts[20] == 250 and counts[40] == 100 and counts[90] == 350

    def test_stream_equals_materialize(self, sample_summary):
        generator = TupleGenerator(sample_summary)
        batches = list(generator.stream(batch_size=64))
        assert sum(b.num_rows for b in batches) == 700
        streamed_a = np.concatenate([b.column("A") for b in batches])
        assert np.array_equal(streamed_a, generator.materialize().column("A"))
        streamed_pk = np.concatenate([b.column("S_pk") for b in batches])
        assert np.array_equal(streamed_pk, np.arange(1, 701))

    def test_stream_equals_materialize_across_batch_sizes(self, sample_summary):
        generator = TupleGenerator(sample_summary)
        reference = generator.materialize()
        for batch_size in (1, 7, 65_536):
            batches = list(generator.stream(batch_size=batch_size))
            for column in ("S_pk",) + sample_summary.columns:
                streamed = np.concatenate([b.column(column) for b in batches])
                assert np.array_equal(streamed, reference.column(column)), \
                    (batch_size, column)

    def test_generation_diagnostics_counters(self, sample_summary):
        generator = TupleGenerator(sample_summary)
        assert generator.full_materializations == 0
        assert generator.batches_streamed == 0
        list(generator.stream(batch_size=100))
        assert generator.batches_streamed == 7
        assert generator.full_materializations == 0
        generator.materialize()
        assert generator.full_materializations == 1

    def test_stream_requires_positive_batch(self, sample_summary):
        with pytest.raises(GenerationError):
            list(TupleGenerator(sample_summary).stream(batch_size=0))

    def test_empty_summary(self):
        empty = RelationSummary(relation="E", primary_key="pk", columns=("x",), rows=[])
        generator = TupleGenerator(empty)
        assert generator.total_rows == 0
        assert generator.materialize().num_rows == 0


class TestDatabaseMaterialisation:
    def _summary(self, toy_schema):
        return DatabaseSummary(relations={
            "S": RelationSummary("S", "S_pk", ("A", "B"), [((20, 0), 700)]),
            "T": RelationSummary("T", "T_pk", ("C",), [((2,), 1500)]),
            "R": RelationSummary("R", "R_pk", ("S_fk", "T_fk"), [((700, 1500), 80_000)]),
        })

    def test_materialize_database(self, toy_schema):
        db = materialize_database(self._summary(toy_schema), toy_schema)
        assert db.table("R").num_rows == 80_000
        assert db.table("S").num_rows == 700
        assert int(db.table("R").column("S_fk")[0]) == 700

    def test_dynamic_database_defers_generation(self, toy_schema):
        db = dynamic_database(self._summary(toy_schema), toy_schema)
        assert db.is_dynamic("R")
        table = db.table("R")
        assert table.num_rows == 80_000
        assert not db.is_dynamic("R")

    def test_dynamic_database_never_materializes_eagerly(self, toy_schema, monkeypatch):
        """The dynamic path must be served by the batched ``stream()`` path:
        no full one-shot materialisation may happen, before or after the
        first scan."""
        def forbidden(self):
            raise AssertionError("dynamic database called materialize()")

        monkeypatch.setattr(TupleGenerator, "materialize", forbidden)
        db = dynamic_database(self._summary(toy_schema), toy_schema,
                              batch_size=4096)
        assert all(db.is_dynamic(name) for name in ("R", "S", "T"))
        # first scan generates via stream batches, never materialize()
        assert db.table("R").num_rows == 80_000
        assert db.table("S").num_rows == 700

    def test_dynamic_database_scan_batches_bounded(self, toy_schema):
        db = dynamic_database(self._summary(toy_schema), toy_schema,
                              batch_size=1000)
        seen = 0
        for batch in db.scan_batches("R"):
            assert batch.num_rows <= 1000
            seen += batch.num_rows
        assert seen == 80_000
        # batch scanning alone must not materialise the relation
        assert db.is_dynamic("R")

    def test_dynamic_database_matches_materialized(self, toy_schema):
        summary = self._summary(toy_schema)
        dynamic = dynamic_database(summary, toy_schema, batch_size=777)
        materialized = materialize_database(summary, toy_schema)
        for relation in ("R", "S", "T"):
            left, right = dynamic.table(relation), materialized.table(relation)
            assert left.num_rows == right.num_rows
            for column in left.column_names:
                assert np.array_equal(left.column(column), right.column(column))


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 200)), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_materialised_value_counts_match_summary(rows):
    """Property: for any summary, the materialised column value histogram is
    exactly the per-row counts aggregated by value."""
    summary = RelationSummary(
        relation="X", primary_key="pk", columns=("v",),
        rows=[((value,), count) for value, count in rows],
    )
    table = TupleGenerator(summary).materialize()
    assert table.num_rows == sum(count for _, count in rows)
    expected = {}
    for value, count in rows:
        expected[value] = expected.get(value, 0) + count
    values = table.column("v")
    for value, count in expected.items():
        assert int((values == value).sum()) == count
