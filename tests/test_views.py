"""Tests for view construction, CC rewriting and sub-view decomposition."""

from __future__ import annotations

import pytest

from repro.constraints.cc import CardinalityConstraint
from repro.errors import ViewError
from repro.predicates.dnf import DNFPredicate, col
from repro.views.preprocess import Preprocessor
from repro.views.viewdef import ViewSet


class TestViewSet:
    def test_views_include_borrowed_attributes(self, toy_schema):
        views = ViewSet(toy_schema)
        r_view = views.view("R")
        # R has no attributes of its own; it borrows A, B from S and C from T,
        # exactly as in Section 3.2 (R_view(A, B, C)).
        assert r_view.own_attributes == ()
        assert set(r_view.borrowed_attributes) == {"A", "B", "C"}
        assert r_view.source_of("A") == "S"
        assert r_view.source_of("C") == "T"
        assert views.view("S").attributes == ("A", "B")
        assert views.view("T").attributes == ("C",)

    def test_transitive_borrowing(self, small_tpcds_schema):
        views = ViewSet(small_tpcds_schema)
        ss_view = views.view("store_sales")
        # store_sales borrows customer_address attributes through customer.
        assert "ca_state" in ss_view.attributes
        assert ss_view.source_of("ca_state") == "customer_address"
        assert ss_view.direct_dependencies[0] == "date_dim"

    def test_domain_lookup_and_errors(self, toy_schema):
        views = ViewSet(toy_schema)
        assert views.view("S").domain("A").hi == 100
        with pytest.raises(ViewError):
            views.view("S").domain("C")
        with pytest.raises(ViewError):
            views.view("missing")


class TestPreprocessor:
    def test_rewrite_join_constraint(self, toy_schema):
        pre = Preprocessor(toy_schema)
        cc = CardinalityConstraint(
            relation="R",
            predicate=(col("A").between(20, 60)).conjoin(col("C").between(2, 3)),
            cardinality=30_000,
            joined_relations=("R", "S", "T"),
        )
        vc = pre.rewrite_constraint(cc)
        assert vc.cardinality == 30_000
        assert set(vc.attributes) == {"A", "C"}

    def test_rewrite_rejects_foreign_attributes(self, toy_schema):
        pre = Preprocessor(toy_schema)
        cc = CardinalityConstraint(
            relation="S", predicate=col("C").between(0, 5), cardinality=10,
        )
        with pytest.raises(ViewError):
            pre.rewrite_constraint(cc)

    def test_task_includes_size_constraint_fallback(self, toy_schema):
        pre = Preprocessor(toy_schema)
        task = pre.build_task("S", [])
        assert task.total_rows == 700
        assert any(vc.is_size_constraint for vc in task.constraints)
        assert task.subviews == []  # nothing constrained -> no sub-views

    def test_subviews_are_cliques_of_co_occurring_attributes(self, toy_schema):
        pre = Preprocessor(toy_schema)
        ccs = [
            CardinalityConstraint(relation="R", cardinality=100,
                                  predicate=(col("A") >= 10).conjoin(col("B") >= 5)),
            CardinalityConstraint(relation="R", cardinality=50,
                                  predicate=(col("B") >= 5).conjoin(col("C") >= 1)),
            CardinalityConstraint(relation="R", cardinality=80_000,
                                  predicate=DNFPredicate.true()),
        ]
        task = pre.build_task("R", ccs)
        attribute_sets = sorted(sv.attributes for sv in task.subviews)
        assert attribute_sets == [("A", "B"), ("B", "C")]
        # the size constraint is in scope of every sub-view
        size_index = next(i for i, vc in enumerate(task.constraints) if vc.is_size_constraint)
        for sv in task.subviews:
            assert size_index in sv.constraint_indices
        # the clique tree connects the two sub-views (they share B)
        assert task.consistency_edges == [(0, 1)]
        assert sorted(task.merge_order()) == [0, 1]

    def test_chordalisation_produces_cliques_covering_every_cc(self, toy_schema):
        pre = Preprocessor(toy_schema)
        # A cycle A-B, B-C, C-A would already be chordal; use 4-cycle via two
        # relations' attributes to exercise fill-in: A-B, B-C, C-A is chordal,
        # so instead use A-B, B-C and a constraint joining A-C to close a triangle.
        ccs = [
            CardinalityConstraint(relation="R", cardinality=10,
                                  predicate=(col("A") >= 1).conjoin(col("B") >= 1)),
            CardinalityConstraint(relation="R", cardinality=10,
                                  predicate=(col("B") >= 1).conjoin(col("C") >= 1)),
            CardinalityConstraint(relation="R", cardinality=10,
                                  predicate=(col("A") >= 1).conjoin(col("C") >= 1)),
        ]
        task = pre.build_task("R", ccs)
        for index, vc in enumerate(task.constraints):
            if vc.is_size_constraint:
                continue
            covered = any(
                set(vc.attributes) <= set(sv.attributes) and index in sv.constraint_indices
                for sv in task.subviews
            )
            assert covered, f"constraint {index} not covered by any sub-view"

    def test_build_tasks_groups_by_relation(self, toy_schema):
        pre = Preprocessor(toy_schema)
        from repro.constraints.workload import ConstraintSet
        ccs = ConstraintSet([
            CardinalityConstraint(relation="S", predicate=col("A") >= 10, cardinality=5),
            CardinalityConstraint(relation="T", predicate=col("C") >= 1, cardinality=7),
        ])
        tasks = pre.build_tasks(ccs)
        assert set(tasks) == {"S", "T"}
        assert tasks["S"].relation == "S"
