"""Perf-trajectory gate: diff fresh ``BENCH_*.json`` records against baselines.

Classifies every metric as better / within-noise / regressed (plus
missing/new bookkeeping) using the per-metric direction and tolerance
declared at record time, prints a markdown summary table, and exits:

* ``0`` — no metric regressed;
* ``2`` — at least one metric regressed or silently vanished;
* ``1`` — the comparison itself could not run (bad paths, torn JSON).

Usage::

    python tools/bench_compare.py --fresh /tmp/bench-fresh
    python tools/bench_compare.py --baseline benchmarks --fresh /tmp/bench-fresh

``--fresh`` is mandatory: comparing the baseline directory against itself is
a guaranteed-pass no-op, so an omitted flag exits 1 instead of pretending a
regression check ran.

Run by the CI ``bench-trajectory`` job after the quick-mode benchmark suite;
see ``docs/BENCHMARKS.md`` for the baseline-refresh workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import CLASS_SKIPPED, compare_dirs, markdown_report  # noqa: E402


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(REPO_ROOT / "benchmarks"),
                        help="directory holding the committed baseline JSONs"
                             " (default: benchmarks/)")
    parser.add_argument("--fresh", default=None,
                        help="directory holding the fresh run's JSONs (required)")
    args = parser.parse_args(argv)

    if not args.fresh:
        print("bench compare: --fresh is required — diffing the baseline"
              " directory against itself is a guaranteed-pass no-op."
              " Record a fresh run first, e.g. BENCH_QUICK=1"
              " BENCH_OUTPUT_DIR=/tmp/bench-fresh pytest benchmarks/bench_*.py"
              " --benchmark-disable, then pass --fresh /tmp/bench-fresh.",
              file=sys.stderr)
        return 1
    baseline_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh)
    if not baseline_dir.is_dir():
        print(f"bench compare: baseline dir {baseline_dir} missing", file=sys.stderr)
        return 1
    if not fresh_dir.is_dir():
        print(f"bench compare: fresh dir {fresh_dir} missing", file=sys.stderr)
        return 1
    if fresh_dir.resolve() == baseline_dir.resolve():
        print("bench compare: WARNING --fresh is the --baseline directory;"
              " a self-comparison always passes and verifies nothing",
              file=sys.stderr)

    try:
        comparison = compare_dirs(baseline_dir, fresh_dir)
    except ValueError as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 1
    if not comparison.verdicts:
        print(f"bench compare: no BENCH_*.json under {baseline_dir} or {fresh_dir}",
              file=sys.stderr)
        return 1

    print(markdown_report(comparison))
    skipped = [v for v in comparison.verdicts if v.verdict == CLASS_SKIPPED]
    for verdict in skipped:
        print(f"bench compare: WARNING {verdict.benchmark}: {verdict.detail}",
              file=sys.stderr)
    failures = comparison.failures()
    if failures:
        for verdict in failures:
            print(f"bench compare: FAIL {verdict.benchmark}.{verdict.metric}:"
                  f" {verdict.verdict} ({verdict.detail})", file=sys.stderr)
        return 2
    print("bench compare: trajectory OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
