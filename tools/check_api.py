"""Public-API surface lock (run by the CI ``docs`` job and tier-1 tests).

Snapshots the public surface — ``repro.__all__``, ``repro.api.__all__`` and
the call signatures of every ``repro.api`` symbol (for classes: their public
methods) — into ``tools/api_surface.json`` and fails when the live library
drifts from the snapshot.  Accidental additions, removals and signature
changes all become an explicit review decision: rerun with ``--update`` to
bless an intentional change.

Usage::

    python tools/check_api.py           # exit 0 when clean, 1 on drift
    python tools/check_api.py --update  # rewrite the snapshot
"""

from __future__ import annotations

import inspect
import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "tools" / "api_surface.json"


def _signature(obj: object) -> str:
    try:
        return str(inspect.signature(obj))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "<no signature>"


def current_surface() -> Dict[str, object]:
    """Compute the live public surface."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import repro
    import repro.api

    api_signatures: Dict[str, object] = {}
    for name in sorted(repro.api.__all__):
        symbol = getattr(repro.api, name)
        if inspect.isclass(symbol):
            methods = {}
            for attr, member in sorted(vars(symbol).items()):
                if attr.startswith("_") or not callable(member):
                    continue
                methods[attr] = _signature(member)
            api_signatures[name] = {"kind": "class", "methods": methods}
        elif callable(symbol):
            api_signatures[name] = {"kind": "function",
                                    "signature": _signature(symbol)}
        else:
            api_signatures[name] = {"kind": "value", "type": type(symbol).__name__}
    return {
        "repro_all": sorted(repro.__all__),
        "repro_api_all": sorted(repro.api.__all__),
        "repro_api_signatures": api_signatures,
    }


def _diff(expected: object, actual: object, path: str, errors: List[str]) -> None:
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in actual:
                errors.append(f"{path}.{key}: removed from the live surface")
            elif key not in expected:
                errors.append(f"{path}.{key}: added but not in the snapshot")
            else:
                _diff(expected[key], actual[key], f"{path}.{key}", errors)
    elif isinstance(expected, list) and isinstance(actual, list):
        for name in sorted(set(expected) - set(actual)):
            errors.append(f"{path}: {name!r} removed from the live surface")
        for name in sorted(set(actual) - set(expected)):
            errors.append(f"{path}: {name!r} added but not in the snapshot")
    elif expected != actual:
        errors.append(f"{path}: snapshot {expected!r} != live {actual!r}")


def check() -> List[str]:
    """Return one error per drift between the snapshot and the live surface."""
    if not SNAPSHOT.exists():
        return [f"snapshot {SNAPSHOT.relative_to(REPO_ROOT)} missing;"
                " run: python tools/check_api.py --update"]
    expected = json.loads(SNAPSHOT.read_text(encoding="utf-8"))
    errors: List[str] = []
    _diff(expected, current_surface(), "api", errors)
    return errors


def main(argv: List[str]) -> int:
    if "--update" in argv:
        SNAPSHOT.write_text(json.dumps(current_surface(), indent=2,
                                       sort_keys=True) + "\n", encoding="utf-8")
        print(f"api check: snapshot written to {SNAPSHOT.relative_to(REPO_ROOT)}")
        return 0
    errors = check()
    for error in errors:
        print(f"api check: {error}", file=sys.stderr)
    if errors:
        print("api check: intentional change? rerun with --update",
              file=sys.stderr)
        return 1
    print("api check: public surface matches tools/api_surface.json")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
