"""Benchmark-coverage guard: no silently untracked benchmark.

Checks, for every ``benchmarks/bench_*.py``:

* a committed ``BENCH_<name>.json`` baseline exists next to it,
* the baseline parses, carries the supported schema version, names the
  matching benchmark, and records at least one metric,
* the baseline was recorded at quick scale (the committed trajectory is the
  quick-mode one CI reproduces; a full-scale baseline would make every CI
  comparison silently skip on the environment mismatch),
* the benchmark file routes its measurements through the harness (it
  requests the ``bench`` fixture),

and, conversely, that no orphan ``BENCH_*.json`` outlives a deleted
benchmark.  Run by the CI ``bench-trajectory`` job and tier-1 tests.

Usage::

    python tools/check_bench.py     # exit 0 when clean, 1 on any violation
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import load_record, record_filename  # noqa: E402

#: A benchmark uses the harness when some test requests the ``bench`` fixture.
_FIXTURE_RE = re.compile(r"^def test_\w+\([^)]*\bbench\b", re.MULTILINE)


def check() -> List[str]:
    """Return one error per coverage violation."""
    errors: List[str] = []
    bench_files = sorted(BENCH_DIR.glob("bench_*.py"))
    if not bench_files:
        return [f"no bench_*.py found under {BENCH_DIR}"]

    expected_jsons = set()
    for bench_file in bench_files:
        name = bench_file.stem[len("bench_"):]
        json_path = BENCH_DIR / record_filename(name)
        expected_jsons.add(json_path.name)

        if not _FIXTURE_RE.search(bench_file.read_text(encoding="utf-8")):
            errors.append(f"{bench_file.name}: no test requests the 'bench'"
                          " fixture — measurements are not recorded")
        if not json_path.exists():
            errors.append(f"{bench_file.name}: baseline {json_path.name} missing"
                          " — run the quick suite and commit it")
            continue
        try:
            payload = load_record(json_path)
        except ValueError as exc:
            errors.append(f"{json_path.name}: invalid record ({exc})")
            continue
        if payload["benchmark"] != name:
            errors.append(f"{json_path.name}: names benchmark"
                          f" {payload['benchmark']!r}, expected {name!r}")
        if not payload["metrics"]:
            errors.append(f"{json_path.name}: records no metrics")
        scale = payload["environment"].get("scale")
        if scale != "quick":
            errors.append(f"{json_path.name}: baseline scale is {scale!r}, not"
                          " 'quick' — CI compares quick runs, so this baseline"
                          " would always be skipped")

    for json_path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        if json_path.name not in expected_jsons:
            errors.append(f"{json_path.name}: orphan baseline — no matching"
                          " bench_*.py")
    return errors


def main() -> int:
    errors = check()
    for error in errors:
        print(f"bench check: {error}", file=sys.stderr)
    if errors:
        return 1
    count = len(list(BENCH_DIR.glob("bench_*.py")))
    print(f"bench check: {count} benchmarks all emit tracked BENCH_*.json records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
