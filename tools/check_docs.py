"""Documentation drift checks (run by the CI ``docs`` job and tier-1 tests).

Two guarantees, failing the build on drift:

1. **Module docstrings** — every Python module under ``src/repro/`` carries
   a module docstring (packages included), so the package contracts
   documented in ``docs/ARCHITECTURE.md`` always have an in-code anchor.
2. **Fenced snippets** — every ```` ```python ```` block in ``README.md``
   and ``docs/*.md`` must at least compile; blocks containing ``>>>``
   prompts are executed through :mod:`doctest` (the same machinery as
   ``python -m doctest``) with ``src/`` importable, so documented examples
   and their printed outputs cannot rot.

Usage::

    python tools/check_docs.py          # exit 0 when clean, 1 with findings
"""

from __future__ import annotations

import ast
import doctest
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
FENCE = re.compile(r"```python[ \t]*\n(.*?)```", re.DOTALL)


def doc_files() -> List[Path]:
    """The markdown files whose fenced snippets are checked."""
    return [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]


def check_module_docstrings() -> List[str]:
    """Return one error per ``src/repro`` module missing a docstring."""
    errors = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if not ast.get_docstring(tree):
            errors.append(f"{path.relative_to(REPO_ROOT)}: missing module docstring")
    return errors


def check_fenced_snippets() -> List[str]:
    """Compile every fenced python block; run doctest blocks."""
    errors = []
    runner = doctest.DocTestRunner(verbose=False,
                                   optionflags=doctest.ELLIPSIS)
    parser = doctest.DocTestParser()
    for path in doc_files():
        if not path.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: file not found")
            continue
        text = path.read_text(encoding="utf-8")
        for index, block in enumerate(FENCE.findall(text)):
            name = f"{path.relative_to(REPO_ROOT)}[block {index}]"
            if ">>>" in block:
                test = parser.get_doctest(block, {}, name, str(path), 0)
                result = runner.run(test, clear_globs=True)
                if result.failed:
                    errors.append(f"{name}: {result.failed} doctest failure(s)")
            else:
                try:
                    compile(block, name, "exec")
                except SyntaxError as error:
                    errors.append(f"{name}: does not compile ({error.msg},"
                                  f" line {error.lineno})")
    return errors


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))  # make `repro` doctest-importable
    errors = check_module_docstrings() + check_fenced_snippets()
    for error in errors:
        print(f"docs check: {error}", file=sys.stderr)
    if not errors:
        print(f"docs check: {len(doc_files())} doc files and all"
              " src/repro module docstrings clean")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
