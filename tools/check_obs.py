"""Observability drift checks (run by the CI ``docs`` job and tier-1 tests).

Three guarantees, failing the build on drift:

1. **No bare output** — no ``print()`` call anywhere under ``src/repro/``
   outside the CLI front-ends (``cli.py`` and ``__main__.py`` modules):
   library code reports through the ``repro.*`` loggers so embedding
   applications keep full control of the output.
2. **Namespaced loggers** — every ``logging.getLogger("literal")`` call
   names ``repro`` or a ``repro.*`` child (``getLogger(__name__)`` and
   :func:`repro.obs.get_logger` are fine by construction), so one switch
   silences or redirects the whole library.
3. **Catalogue completeness** — the metric names registered through
   ``.counter("...")`` / ``.gauge("...")`` / ``.histogram("...")`` calls
   and the catalogue table in ``docs/OBSERVABILITY.md`` match exactly, in
   both directions.  Registration names must be inline string literals
   (never aliased through a variable) precisely so this check can see
   them.

Usage::

    python tools/check_obs.py          # exit 0 when clean, 1 with findings
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules allowed to ``print()``: the command-line front-ends.
PRINT_EXEMPT = ("cli.py", "__main__.py")

#: Method names whose first literal argument registers a metric family.
METRIC_FACTORIES = ("counter", "gauge", "histogram")

#: A catalogue table row: ``| `repro_...` | kind | labels | meaning |``.
CATALOGUE_ROW = re.compile(r"^\|\s*`(repro_[a-z0-9_]+)`\s*\|", re.MULTILINE)


def _iter_sources(src_root: Path) -> List[Path]:
    return sorted(src_root.rglob("*.py"))


def _check_tree(path: Path, tree: ast.AST,
                metrics: Dict[str, List[Tuple[Path, int]]],
                findings: List[str]) -> None:
    """Collect metric registrations and print/logger violations of one file."""
    rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    exempt_print = path.name in PRINT_EXEMPT
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # -- bare print() --------------------------------------------- #
        if (isinstance(func, ast.Name) and func.id == "print"
                and not exempt_print):
            findings.append(
                f"{rel}:{node.lineno}: bare print() in library code — log"
                " through repro.obs.get_logger() instead"
            )
        # -- logger namespace ----------------------------------------- #
        if (isinstance(func, ast.Attribute) and func.attr == "getLogger"
                and node.args and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            name = node.args[0].value
            if name != "repro" and not name.startswith("repro."):
                findings.append(
                    f"{rel}:{node.lineno}: logger {name!r} outside the"
                    " repro.* namespace"
                )
        # -- metric registrations -------------------------------------- #
        if isinstance(func, ast.Attribute) and func.attr in METRIC_FACTORIES:
            if (node.args and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                    and node.args[0].value.startswith("repro_")):
                metrics.setdefault(node.args[0].value, []).append(
                    (rel, node.lineno))
            elif _receiver_is_registry(func.value):
                findings.append(
                    f"{rel}:{node.lineno}: metric name passed to"
                    f" .{func.attr}() must be an inline 'repro_*' string"
                    " literal so this lint can match it against the"
                    " catalogue"
                )


def _receiver_is_registry(node: ast.AST) -> bool:
    """``registry.counter(...)`` / ``self.registry.gauge(...)`` receivers."""
    if isinstance(node, ast.Name):
        return node.id.endswith("registry")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("registry")
    return False


def check_sources(src_root: Path) -> Tuple[Dict[str, List[Tuple[Path, int]]],
                                           List[str]]:
    """Walk the tree; return registered metric names and style findings."""
    metrics: Dict[str, List[Tuple[Path, int]]] = {}
    findings: List[str] = []
    for path in _iter_sources(src_root):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as error:  # pragma: no cover - tier-1 catches it
            findings.append(f"{path}: does not parse: {error}")
            continue
        _check_tree(path, tree, metrics, findings)
    return metrics, findings


def catalogue_names(doc_path: Path) -> Set[str]:
    """Metric names documented in the OBSERVABILITY.md catalogue table."""
    return set(CATALOGUE_ROW.findall(doc_path.read_text(encoding="utf-8")))


def check_catalogue(metrics: Dict[str, List[Tuple[Path, int]]],
                    documented: Set[str]) -> List[str]:
    """Cross-check code registrations against the docs, both directions."""
    findings: List[str] = []
    for name in sorted(set(metrics) - documented):
        where = ", ".join(f"{path}:{line}" for path, line in metrics[name])
        findings.append(
            f"metric {name} is registered ({where}) but missing from the"
            " docs/OBSERVABILITY.md catalogue"
        )
    for name in sorted(documented - set(metrics)):
        findings.append(
            f"metric {name} is documented in docs/OBSERVABILITY.md but"
            " registered nowhere under src/repro"
        )
    return findings


def run(src_root: Path, doc_path: Path) -> List[str]:
    """All observability checks; returns the (possibly empty) findings."""
    metrics, findings = check_sources(src_root)
    if not doc_path.is_file():
        findings.append(f"{doc_path}: metric catalogue document is missing")
        return findings
    findings.extend(check_catalogue(metrics, catalogue_names(doc_path)))
    return findings


def main() -> int:
    findings = run(REPO_ROOT / "src" / "repro",
                   REPO_ROOT / "docs" / "OBSERVABILITY.md")
    for finding in findings:
        print(f"check_obs: {finding}")
    if findings:
        print(f"check_obs: {len(findings)} finding(s)")
        return 1
    print("check_obs: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
